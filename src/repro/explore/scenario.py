"""Declarative sweep specifications for the exploration engine.

A :class:`Scenario` names a *design space*: base architectures, the
transform chains (Section 4 parallelize/pipeline/sequentialize moves)
applied to each of them, the technology flavours and the frequency grid.
``Scenario.expand()`` materialises the full cartesian product as
:class:`DesignPoint` instances, and ``to_dict``/``from_dict`` give an
exact JSON round-trip so scenarios can live in files, travel over the
wire, and key the on-disk result cache by content hash.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Mapping

import numpy as np

from ..core.architecture import ArchitectureParameters
from ..core.technology import Technology, flavour
from ..core.transforms import parallelize, pipeline, sequentialize


@dataclass(frozen=True)
class TransformStep:
    """One Section 4 architecture move in a transform chain.

    ``op`` is one of ``"parallelize"``, ``"pipeline"`` or
    ``"sequentialize"``; ``args`` holds the keyword arguments of the
    matching :mod:`repro.core.transforms` function as a sorted tuple of
    items (tuples keep the dataclass hashable, which keeps scenarios
    usable as dict keys and content-hashable).
    """

    op: str
    args: tuple[tuple[str, Any], ...] = ()

    #: The builtin Section 4 moves.  Kept as a class attribute for
    #: backwards compatibility; lookups go through the catalog's
    #: ``transform`` namespace, so ops registered there (user transforms
    #: included, builtin overrides too) are valid in scenarios.
    _APPLIERS = {
        "parallelize": parallelize,
        "pipeline": pipeline,
        "sequentialize": sequentialize,
    }

    def __post_init__(self) -> None:
        self._applier()  # fail fast on unknown ops, with did-you-mean

    def _applier(self):
        from ..catalog import CatalogKeyError, default_catalog

        try:
            return default_catalog().transforms.get(self.op)
        except CatalogKeyError as error:
            message = (
                f"unknown transform op {self.op!r}; "
                f"known: {', '.join(error.known)}"
            )
            if error.suggestions:
                quoted = " or ".join(repr(s) for s in error.suggestions)
                message += f" — did you mean {quoted}?"
            raise ValueError(message) from None

    @property
    def params(self) -> dict[str, Any]:
        """The step's keyword arguments as a plain dict."""
        return dict(self.args)

    def apply(self, arch: ArchitectureParameters) -> ArchitectureParameters:
        """Apply this step to an architecture summary."""
        return self._applier()(arch, **self.params)

    def to_dict(self) -> dict[str, Any]:
        return {"op": self.op, **self.params}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TransformStep":
        params = {key: value for key, value in payload.items() if key != "op"}
        return cls(op=payload["op"], args=tuple(sorted(params.items())))


def parallelize_step(k: int, n_outputs: int = 32) -> TransformStep:
    """k-way parallelisation step with the Table-1-fitted overheads."""
    return TransformStep("parallelize", (("k", k), ("n_outputs", n_outputs)))


def pipeline_step(stages: int, style: str = "horizontal") -> TransformStep:
    """s-stage pipelining step, ``style`` in {'horizontal', 'diagonal'}."""
    return TransformStep("pipeline", (("stages", stages), ("style", style)))


def sequentialize_step(cycles: int) -> TransformStep:
    """cycles-per-result sequentialisation step."""
    return TransformStep("sequentialize", (("cycles", cycles),))


@dataclass(frozen=True)
class FrequencyGrid:
    """An explicit tuple of target frequencies [Hz].

    Stored as literal values (not start/stop/points) so the JSON
    round-trip is bit-exact and the content hash is stable; the
    :meth:`linear`/:meth:`logspace` constructors cover the common grids.
    """

    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("frequency grid must contain at least one point")
        if any(value <= 0.0 for value in self.values):
            raise ValueError("frequencies must be positive")

    @classmethod
    def linear(cls, start: float, stop: float, points: int) -> "FrequencyGrid":
        return cls(tuple(float(f) for f in np.linspace(start, stop, points)))

    @classmethod
    def logspace(cls, start: float, stop: float, points: int) -> "FrequencyGrid":
        return cls(
            tuple(float(f) for f in np.geomspace(start, stop, points))
        )

    @classmethod
    def single(cls, frequency: float) -> "FrequencyGrid":
        return cls((float(frequency),))

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self):
        return iter(self.values)

    def to_dict(self) -> dict[str, Any]:
        return {"values": list(self.values)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FrequencyGrid":
        if "values" in payload:
            return cls(tuple(float(f) for f in payload["values"]))
        spacing = payload.get("spacing", "log")
        maker = cls.logspace if spacing == "log" else cls.linear
        return maker(payload["start"], payload["stop"], payload["points"])


@dataclass(frozen=True)
class DesignPoint:
    """One fully specified candidate: (architecture, technology, frequency)."""

    architecture: ArchitectureParameters
    technology: Technology
    frequency: float

    def describe(self) -> str:
        return (
            f"{self.architecture.name} on {self.technology.name} "
            f"@ {self.frequency / 1e6:g} MHz"
        )


def _architecture_to_dict(arch: ArchitectureParameters) -> dict[str, Any]:
    return asdict(arch)


def _architecture_from_spec(spec: Any) -> ArchitectureParameters:
    """An architecture object, catalog name, ``$ref`` or field payload."""
    if isinstance(spec, ArchitectureParameters):
        return spec
    from ..catalog import entity_from_dict

    return entity_from_dict("architecture", spec)


#: Backwards-compatible alias (historical name took only field payloads).
_architecture_from_dict = _architecture_from_spec


def _technology_to_dict(tech: Technology) -> dict[str, Any]:
    return asdict(tech)


def _technology_from_spec(spec: Any) -> Technology:
    """A technology object, catalog name/alias, ``$ref`` or field payload."""
    if isinstance(spec, Technology):
        return spec
    from ..catalog import entity_from_dict

    return entity_from_dict("technology", spec)


@dataclass(frozen=True)
class Scenario:
    """A declarative design-space sweep.

    The candidate set is the cartesian product

        architectures × transform_chains × technologies × frequencies

    where each transform chain (possibly empty — the identity) is applied
    to each base architecture before evaluation.
    """

    name: str
    architectures: tuple[ArchitectureParameters, ...]
    technologies: tuple[Technology, ...]
    frequencies: FrequencyGrid
    transform_chains: tuple[tuple[TransformStep, ...], ...] = ((),)
    description: str = ""

    def __post_init__(self) -> None:
        # Bare catalog names (and {"$ref": ...} payloads) are accepted
        # anywhere objects are; resolve them up front so expansion,
        # serialisation and content hashing always see real objects.
        if any(not isinstance(a, ArchitectureParameters) for a in self.architectures):
            object.__setattr__(
                self,
                "architectures",
                tuple(_architecture_from_spec(a) for a in self.architectures),
            )
        if any(not isinstance(t, Technology) for t in self.technologies):
            object.__setattr__(
                self,
                "technologies",
                tuple(_technology_from_spec(t) for t in self.technologies),
            )
        if not self.architectures:
            raise ValueError("scenario needs at least one architecture")
        if not self.technologies:
            raise ValueError("scenario needs at least one technology")
        if not self.transform_chains:
            raise ValueError(
                "scenario needs at least one transform chain (use ((),) for identity)"
            )

    @property
    def size(self) -> int:
        """Number of candidates the scenario expands to."""
        return (
            len(self.architectures)
            * len(self.transform_chains)
            * len(self.technologies)
            * len(self.frequencies)
        )

    def derived_architectures(self) -> list[ArchitectureParameters]:
        """Every base architecture with every transform chain applied."""
        derived = []
        for arch in self.architectures:
            for chain in self.transform_chains:
                transformed = arch
                for step in chain:
                    transformed = step.apply(transformed)
                derived.append(transformed)
        return derived

    def expand(self) -> list[DesignPoint]:
        """Materialise the full candidate grid, in deterministic order."""
        return [
            DesignPoint(architecture=arch, technology=tech, frequency=freq)
            for arch in self.derived_architectures()
            for tech in self.technologies
            for freq in self.frequencies
        ]

    def expand_columns(self):
        """The same grid as :meth:`expand`, as column arrays.

        Returns an :class:`~repro.explore.columnar.ExpandedColumns` —
        the engine's batch path consumes this directly and never builds
        the per-point object list.  Row ``i`` of the columns equals
        ``expand()[i]``.
        """
        from .columnar import expand_columns

        return expand_columns(self)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "architectures": [
                _architecture_to_dict(arch) for arch in self.architectures
            ],
            "technologies": [
                _technology_to_dict(tech) for tech in self.technologies
            ],
            "frequencies": self.frequencies.to_dict(),
            "transform_chains": [
                [step.to_dict() for step in chain]
                for chain in self.transform_chains
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Scenario":
        """Rebuild a scenario from its JSON payload.

        Architecture and technology specs may each be a full field
        payload, a bare catalog name (``"RCA16"``, ``"LL"``,
        pack-defined entries included) or a ``{"$ref": name}`` reference
        — all resolved through the one catalog normaliser.
        """
        return cls(
            name=payload["name"],
            description=payload.get("description", ""),
            architectures=tuple(
                _architecture_from_spec(spec) for spec in payload["architectures"]
            ),
            technologies=tuple(
                _technology_from_spec(spec) for spec in payload["technologies"]
            ),
            frequencies=FrequencyGrid.from_dict(payload["frequencies"]),
            transform_chains=tuple(
                tuple(TransformStep.from_dict(step) for step in chain)
                for chain in payload.get("transform_chains", [[]])
            ),
        )

    def to_json(self, indent: int | None = 2) -> str:
        import json

        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        import json

        return cls.from_dict(json.loads(text))

    def content_hash(self) -> str:
        """Stable content hash of the sweep definition (cache key base)."""
        from .cache import content_hash

        return content_hash(self.to_dict())

    def describe(self) -> str:
        return (
            f"{self.name}: {len(self.architectures)} arch × "
            f"{len(self.transform_chains)} chains × "
            f"{len(self.technologies)} tech × "
            f"{len(self.frequencies)} freq = {self.size} candidates"
        )


#: The demo base architectures: the published RCA and Wallace rows with
#: the plausible per-cell factors DESIGN.md derives (same numbers as the
#: test-suite's wallace fixture), so the demo needs no calibration
#: machinery.
_DEMO_ARCHITECTURES = (
    ArchitectureParameters(
        name="RCA16",
        n_cells=608,
        activity=0.5056,
        logical_depth=61.0,
        capacitance=70e-15,
        area=11038.0,
        io_factor=18.0,
        zeta_factor=0.2,
    ),
    ArchitectureParameters(
        name="Wallace16",
        n_cells=729,
        activity=0.2976,
        logical_depth=17.0,
        capacitance=70e-15,
        area=11928.0,
        io_factor=18.0,
        zeta_factor=0.2,
    ),
)


def demo_scenario(frequency_points: int = 42) -> Scenario:
    """A ready-made ≥1,000-candidate sweep for the CLI and examples.

    2 architectures × 4 transform chains × 3 flavours × 42 frequencies
    = 1,008 candidates with the default grid.
    """
    chains: tuple[tuple[TransformStep, ...], ...] = (
        (),
        (pipeline_step(2),),
        (parallelize_step(2),),
        (sequentialize_step(16),),
    )
    return Scenario(
        name="demo-multiplier-space",
        description=(
            "16-bit multiplier design space: RCA/Wallace bases under the "
            "Section 4 transforms, across the three ST CMOS09 flavours "
            "and a log frequency grid."
        ),
        architectures=_DEMO_ARCHITECTURES,
        technologies=(flavour("ULL"), flavour("LL"), flavour("HS")),
        frequencies=FrequencyGrid.logspace(2e6, 64e6, frequency_points),
        transform_chains=chains,
    )
