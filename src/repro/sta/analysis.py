"""Static timing analysis over netlist DAGs (DESIGN.md S9).

Replaces the synthesis timing reports the paper read its effective logical
depths from.  Delays are expressed in inverter-delay units (the same
normalisation as the cell library), so the reported critical-path length
*is* the ``LD`` of Eq. 5/6 once referenced to the characterised gate.

Definitions:

* a **timing path** starts at a primary input or a flip-flop output
  (clock-to-q included) and ends at a flip-flop data/enable input or a
  primary output;
* ``critical_path_length`` is the longest such path;
* ``effective_logical_depth`` scales it by the implementation's
  sequencing: × cycles per result (a sequential multiplier must fit
  ``cycles`` critical paths into one data period), ÷ the parallelisation
  divisor (a k-parallel copy gets k periods per path) — exactly how the
  paper's Table 1 LDeff column is defined (224 = 16 × 14; 30.5 = 61 / 2);
* ``arrival_spread`` quantifies the imbalance of input arrival times over
  the netlist's cells, the structural driver of glitching that Section 4
  invokes to explain the diagonal pipeline's higher activity.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..generators.base import MultiplierImplementation
from ..netlist.netlist import Netlist


@dataclass(frozen=True)
class TimingReport:
    """Result of :func:`analyze_timing` (delays in inverter units)."""

    critical_path_length: float
    critical_endpoint: str
    arrival_times: dict[int, float]
    mean_arrival_spread: float
    max_arrival_spread: float

    def describe(self) -> str:
        return (
            f"critical path {self.critical_path_length:.1f} inverter delays "
            f"to {self.critical_endpoint}; mean input-arrival spread "
            f"{self.mean_arrival_spread:.2f}"
        )


def analyze_timing(netlist: Netlist) -> TimingReport:
    """Longest-path analysis; returns arrivals, critical path and spreads."""
    arrival: dict[int, float] = {}
    for net in netlist.primary_inputs:
        arrival[net] = 0.0
    for instance in netlist.cells:
        if instance.cell_type.sequential:
            for pin, net in enumerate(instance.outputs):
                arrival[net] = instance.cell_type.delay_units[pin]

    spreads: list[float] = []
    for cell_index in netlist.combinational_order():
        instance = netlist.cells[cell_index]
        input_arrivals = [arrival[net] for net in instance.inputs]
        latest = max(input_arrivals, default=0.0)
        if len(input_arrivals) > 1:
            spreads.append(latest - min(input_arrivals))
        for pin, net in enumerate(instance.outputs):
            arrival[net] = latest + instance.cell_type.delay_units[pin]

    # Endpoints: flip-flop data/enable inputs and primary outputs.
    worst = 0.0
    worst_name = "(none)"
    for instance in netlist.cells:
        if not instance.cell_type.sequential:
            continue
        for net in instance.inputs:
            if arrival[net] > worst:
                worst = arrival[net]
                worst_name = f"{instance.name}.D"
    for net in netlist.primary_outputs:
        if arrival[net] > worst:
            worst = arrival[net]
            worst_name = netlist.nets[net].name

    return TimingReport(
        critical_path_length=worst,
        critical_endpoint=worst_name,
        arrival_times=arrival,
        mean_arrival_spread=(sum(spreads) / len(spreads)) if spreads else 0.0,
        max_arrival_spread=max(spreads, default=0.0),
    )


def critical_path_length(netlist: Netlist) -> float:
    """Longest register-to-register / port-to-port path [inverter delays]."""
    return analyze_timing(netlist).critical_path_length


def effective_logical_depth(impl: MultiplierImplementation) -> float:
    """The paper's LDeff for a generated implementation.

    ``LDeff = critical_path × cycles_per_result / ld_divisor`` — the
    number of characterised gate delays that must fit into one *data*
    period for the implementation to sustain its throughput.
    """
    return (
        critical_path_length(impl.netlist)
        * impl.cycles_per_result
        / impl.ld_divisor
    )


def stage_depths(netlist: Netlist) -> list[float]:
    """Arrival times at every sequential endpoint, sorted descending.

    Useful for inspecting pipeline balance (Figures 3/4): a well-balanced
    pipeline shows a flat prefix, an unbalanced one a steep head.
    """
    report = analyze_timing(netlist)
    depths = []
    for instance in netlist.cells:
        if instance.cell_type.sequential:
            depths.append(max(report.arrival_times[n] for n in instance.inputs))
    for net in netlist.primary_outputs:
        depths.append(report.arrival_times[net])
    return sorted(depths, reverse=True)
