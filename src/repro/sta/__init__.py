"""Static timing analysis (DESIGN.md S9)."""

from .analysis import (
    TimingReport,
    analyze_timing,
    critical_path_length,
    effective_logical_depth,
    stage_depths,
)

__all__ = [
    "TimingReport",
    "analyze_timing",
    "critical_path_length",
    "effective_logical_depth",
    "stage_depths",
]
