"""One source of truth for "what is in this build?" listings.

``repro list`` and the service introspection routes (``GET /v1/solvers``,
``GET /v1/catalog``) answer the same questions — which entities are
addressable by name right now, and where did each come from — and must
never drift apart.  Everything here reads the live model catalog
(:mod:`repro.catalog`), so builtin entries, programmatic registrations
and plugin-pack entries all show up identically.

Two payload shapes coexist:

* :func:`listing_payload` — the historical ``/v1/solvers`` shape
  (Table 1 architecture names, solver and transform summaries);
* :func:`catalog_payload` — the full five-namespace catalog with
  provenance and value payloads (``repro list --json``,
  ``GET /v1/catalog``).

Vocabulary note: the CLI's ``architectures`` section has always meant
the *generatable Table 1 multipliers*, which live in the catalog's
``generator`` namespace; the catalog's ``architecture`` namespace (the
Eq. 13 parameter summaries) renders as the ``parameters`` section.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "architecture_names",
    "catalog_payload",
    "listing_payload",
    "parameter_listing",
    "render_listing",
    "solver_listing",
    "technology_listing",
    "transform_listing",
]

#: ``repro list`` section name → catalog namespace.
SECTION_NAMESPACES = {
    "architectures": "generator",
    "solvers": "solver",
    "transforms": "transform",
    "technologies": "technology",
    "parameters": "architecture",
}


def _catalog():
    from .catalog import default_catalog

    return default_catalog()


def architecture_names() -> list[str]:
    """The generatable multiplier architectures, Table 1 rows first.

    Table 1 rows keep their historical table order; any further
    generator registered in the catalog (user factories) follows,
    sorted.
    """
    from .generators.registry import MULTIPLIER_NAMES

    table_order = list(MULTIPLIER_NAMES)
    known = set(table_order)
    extras = [
        name for name in _catalog().generators.names() if name not in known
    ]
    return table_order + extras


def solver_listing() -> dict[str, str]:
    """``{registry name: one-line summary}`` for every registered solver."""
    from .solvers import solver_summaries

    return solver_summaries()


def transform_listing() -> dict[str, str]:
    """``{op name: one-line summary}`` for the registered transform ops."""
    return _catalog().transforms.summaries()


def technology_listing() -> dict[str, str]:
    """``{technology name: one-line summary}`` from the catalog."""
    return {
        entry.name: entry.summary for entry in _catalog().technologies
    }


def parameter_listing() -> dict[str, str]:
    """``{architecture-summary name: description}`` from the catalog."""
    return {
        entry.name: entry.summary for entry in _catalog().architectures
    }


def listing_payload() -> dict[str, Any]:
    """The historical aggregate (the ``/v1/solvers`` shape), JSON-ready."""
    return {
        "architectures": architecture_names(),
        "solvers": solver_listing(),
        "transforms": transform_listing(),
    }


def catalog_payload() -> dict[str, Any]:
    """The full five-namespace catalog with provenance (``/v1/catalog``)."""
    return _catalog().payload()


def _column_lines(entries: dict[str, str], header: str | None) -> list[str]:
    lines = [header] if header is not None else []
    if not entries:
        return lines or ["(none registered)"]
    width = max(len(name) for name in entries)
    indent = "  " if header is not None else ""
    lines += [
        f"{indent}{name:<{width}}  {summary}".rstrip()
        for name, summary in entries.items()
    ]
    return lines


def render_listing(what: str = "all") -> str:
    """Human-readable listing for the CLI (``what`` filters the section)."""
    sections: list[str] = []
    include_headers = what == "all"
    if what in ("all", "architectures"):
        lines = architecture_names()
        if include_headers:
            lines = [f"architectures ({len(lines)}):", *(f"  {n}" for n in lines)]
        sections.append("\n".join(lines))
    if what in ("all", "solvers"):
        solvers = solver_listing()
        header = f"solvers ({len(solvers)}):" if include_headers else None
        sections.append("\n".join(_column_lines(solvers, header)))
    if what in ("all", "transforms"):
        transforms = transform_listing()
        header = f"transforms ({len(transforms)}):" if include_headers else None
        sections.append("\n".join(_column_lines(transforms, header)))
    if what in ("all", "technologies"):
        technologies = technology_listing()
        header = (
            f"technologies ({len(technologies)}):" if include_headers else None
        )
        sections.append("\n".join(_column_lines(technologies, header)))
    if what in ("all", "parameters"):
        parameters = parameter_listing()
        header = (
            f"parameters ({len(parameters)}):" if include_headers else None
        )
        sections.append("\n".join(_column_lines(parameters, header)))
    if not sections:
        known = ", ".join(["all", *SECTION_NAMESPACES])
        raise ValueError(f"unknown listing {what!r}; expected one of: {known}")
    return "\n\n".join(sections)
