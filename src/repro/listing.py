"""One source of truth for "what is in this build?" listings.

``repro list`` and the service's ``GET /v1/solvers`` /
``GET /v1/architectures`` answer the same questions — which Table 1
architectures can be generated, which solve paths are registered, which
Section 4 transform ops exist — and must never drift apart.  Both pull
from these helpers, which in turn read the live registries (generator
factories, solver registry, transform appliers) rather than hard-coded
copies.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "architecture_names",
    "listing_payload",
    "render_listing",
    "solver_listing",
    "transform_listing",
]


def architecture_names() -> list[str]:
    """The generatable Table 1 multiplier architectures, in table order."""
    from .generators.registry import MULTIPLIER_NAMES

    return list(MULTIPLIER_NAMES)


def solver_listing() -> dict[str, str]:
    """``{registry name: one-line summary}`` for every registered solver."""
    from .solvers import solver_summaries

    return solver_summaries()


def transform_listing() -> dict[str, str]:
    """``{op name: one-line summary}`` for the Section 4 transform ops."""
    from .explore.scenario import TransformStep

    summaries = {}
    for op, applier in sorted(TransformStep._APPLIERS.items()):
        doc = (applier.__doc__ or "").strip()
        summaries[op] = doc.splitlines()[0] if doc else ""
    return summaries


def listing_payload() -> dict[str, Any]:
    """Everything at once, JSON-ready (the ``/v1/solvers`` shape)."""
    return {
        "architectures": architecture_names(),
        "solvers": solver_listing(),
        "transforms": transform_listing(),
    }


def render_listing(what: str = "all") -> str:
    """Human-readable listing for the CLI (``what`` filters the section)."""
    sections: list[str] = []
    if what in ("all", "architectures"):
        lines = architecture_names()
        if what == "all":
            lines = [f"architectures ({len(lines)}):", *(f"  {n}" for n in lines)]
        sections.append("\n".join(lines))
    if what in ("all", "solvers"):
        solvers = solver_listing()
        lines = [f"solvers ({len(solvers)}):"] if what == "all" else []
        width = max(len(name) for name in solvers)
        indent = "  " if what == "all" else ""
        lines += [
            f"{indent}{name:<{width}}  {summary}"
            for name, summary in solvers.items()
        ]
        sections.append("\n".join(lines))
    if what in ("all", "transforms"):
        transforms = transform_listing()
        lines = [f"transforms ({len(transforms)}):"] if what == "all" else []
        width = max(len(op) for op in transforms)
        indent = "  " if what == "all" else ""
        lines += [
            f"{indent}{op:<{width}}  {summary}"
            for op, summary in transforms.items()
        ]
        sections.append("\n".join(lines))
    if not sections:
        raise ValueError(
            f"unknown listing {what!r}; expected 'all', 'architectures', "
            f"'solvers' or 'transforms'"
        )
    return "\n\n".join(sections)
