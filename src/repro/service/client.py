"""``ServiceClient`` — the Study API, over the wire, stdlib only.

The client mirrors the in-process surface: :meth:`ServiceClient.study`
returns a :class:`RemoteStudy` with the exact fluent builder of
:class:`~repro.study.Study` (it *is* a ``Study`` subclass — the builder
compiles the scenario client-side), whose ``run()`` posts to
``/v1/explore`` and reconstructs the very same typed
:class:`~repro.study.ResultSet` from the response.  Records round-trip
exactly (JSON floats are repr-exact), so remote and local runs of one
scenario compare equal record-for-record.

Transport is ``urllib.request`` with JSON bodies; server-side failures
surface as :class:`ServiceError` carrying the structured error payload
(status / type / message) the server emits.  An optional bounded retry
(``retries=``, off by default) with exponential backoff + jitter covers
connection errors and 503s, so a poll loop survives a server restart.

The async side mirrors the server's job routes: :meth:`ServiceClient.
submit` returns the same :class:`~repro.jobs.AsyncResult` handle as a
local ``Study.submit()``, and ``wait``/``cancel``/``job_result``/
``job_events`` complete the lifecycle.
"""

from __future__ import annotations

import json
import random
import time
import uuid
from typing import Any, Iterator
from urllib import error as urllib_error
from urllib import request as urllib_request
from urllib.parse import urlencode

from .. import obs
from ..explore.engine import EvaluationStats
from ..explore.scenario import Scenario
from ..jobs.handle import AsyncResult
from ..jobs.manager import JobTimeout
from ..resilience import DEADLINE_HEADER
from ..study import Record, ResultSet, Study
from .server import JSON_CONTENT_TYPE, NDJSON_CONTENT_TYPE, ServiceError

__all__ = ["RemoteStudy", "ServiceClient", "ServiceError"]

#: Backoff schedule defaults: first retry after ``DEFAULT_BACKOFF``
#: seconds (plus up to 100% jitter), doubling to ``DEFAULT_BACKOFF_MAX``.
DEFAULT_BACKOFF = 0.25
DEFAULT_BACKOFF_MAX = 8.0

#: Sweeps at least this large stream as NDJSON by default (the whole-
#: payload JSON response is fine below it).
STREAM_THRESHOLD = 512


def _parse_retry_after(headers: Any) -> float | None:
    """The ``Retry-After`` header as seconds, or ``None``.

    Only the delta-seconds form is parsed (the server emits that); the
    HTTP-date form — or garbage — degrades to ``None`` and the normal
    backoff schedule applies.
    """
    if headers is None:
        return None
    raw = headers.get("Retry-After")
    if raw is None:
        return None
    try:
        value = float(raw)
    except (TypeError, ValueError):
        return None
    return value if value >= 0 else None


def _error_from_response(
    status: int, body: bytes, headers: Any = None
) -> ServiceError:
    retry_after = _parse_retry_after(headers)
    try:
        payload = json.loads(body.decode("utf-8"))["error"]
        return ServiceError(
            int(payload.get("status", status)),
            str(payload.get("type", "unknown")),
            str(payload.get("message", "")),
            retry_after=retry_after,
            details=payload.get("details"),
        )
    except (ValueError, KeyError, TypeError, UnicodeDecodeError):
        return ServiceError(
            status,
            "unknown",
            body.decode("utf-8", "replace")[:500],
            retry_after=retry_after,
        )


class ServiceClient:
    """Thin HTTP client for one running ``repro serve`` endpoint.

    ``retries`` (default 0 = off, so tests and fail-fast callers see
    errors immediately) bounds how many times a request is re-sent
    after a connection error, a 503, or an admission-shed 429,
    sleeping an exponentially growing backoff with full jitter between
    attempts — unless the server named a ``Retry-After``, which is
    honoured instead.  Enable it for poll-style workloads
    (``retries=5`` rides out a worker restart).

    ``timeout`` doubles as the end-to-end deadline: every request
    carries it as ``X-Deadline-Ms`` so the server stops working (and
    answers a structured 504) once the client would have hung up.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 300.0,
        retries: int = 0,
        backoff: float = DEFAULT_BACKOFF,
        backoff_max: float = DEFAULT_BACKOFF_MAX,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_max = backoff_max
        # Injectable for tests (no real sleeping, deterministic jitter).
        self._sleep = time.sleep
        self._random = random.random

    # -- transport -----------------------------------------------------------
    def _trace_headers(self) -> dict[str, str]:
        """Propagation headers minted once per logical request.

        A thread already inside a trace (a traced CLI run, a test)
        propagates that context; otherwise a fresh one is minted.  The
        request id is the trace id's 16-hex prefix — the contract the
        server applies too — and because the same ``Request`` object is
        re-sent by the retry loop, every retry of one logical request
        carries the *same* id: server logs show one id, N attempts.
        """
        context = obs.current_context()
        if context is None:
            context = obs.TraceContext.mint()
        return {
            obs.TRACEPARENT_HEADER: context.to_traceparent(),
            "X-Request-Id": context.request_id,
        }

    def _deadline_header(self) -> dict[str, str]:
        """The request's deadline budget, as the server-side header.

        The client-side socket timeout and the server-side cooperative
        deadline carry the same number, so the server gives up (with a
        structured 504) at the same moment the client would.
        """
        return {DEADLINE_HEADER: str(max(1, int(self.timeout * 1000)))}

    def _open_once(self, request: urllib_request.Request):
        try:
            return urllib_request.urlopen(request, timeout=self.timeout)
        except urllib_error.HTTPError as error:
            raise _error_from_response(
                error.code, error.read(), error.headers
            ) from None
        except urllib_error.URLError as error:
            raise ServiceError(
                503, "unreachable", f"cannot reach {self.base_url}: {error.reason}"
            ) from None

    def _open(self, request: urllib_request.Request):
        delay = self.backoff
        for attempt in range(self.retries + 1):
            try:
                return self._open_once(request)
            except ServiceError as error:
                # Connection failures surface as status 503 ("unreachable"),
                # an overloaded/restarting server answers 503 itself, and a
                # full admission queue sheds with 429 — all the transient
                # class retries exist for.
                if error.status not in (429, 503) or attempt >= self.retries:
                    raise
                retry_after = error.retry_after
            if retry_after is not None:
                # The server said exactly when to come back; honour it
                # (jitter on top avoids a shed herd returning in lockstep).
                self._sleep(retry_after * (1.0 + 0.1 * self._random()))
            else:
                self._sleep(delay * (1.0 + self._random()))
            delay = min(delay * 2.0, self.backoff_max)
        raise AssertionError("unreachable")  # pragma: no cover

    def _request(
        self,
        method: str,
        path: str,
        payload: dict[str, Any] | None = None,
        ndjson: bool = False,
        extra_headers: dict[str, str] | None = None,
    ) -> Any:
        headers = {
            "Accept": NDJSON_CONTENT_TYPE if ndjson else JSON_CONTENT_TYPE,
            **self._trace_headers(),
            **self._deadline_header(),
        }
        if extra_headers:
            headers.update(extra_headers)
        body = None
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = JSON_CONTENT_TYPE
        request = urllib_request.Request(
            self.base_url + path, data=body, method=method, headers=headers
        )
        with self._open(request) as response:
            if ndjson:
                return list(_iter_ndjson(response))
            return json.loads(response.read().decode("utf-8"))

    def _get(self, path: str) -> dict[str, Any]:
        return self._request("GET", path)

    def _post(
        self, path: str, payload: dict[str, Any], ndjson: bool = False
    ) -> Any:
        return self._request("POST", path, payload, ndjson=ndjson)

    # -- introspection -------------------------------------------------------
    def healthz(self) -> dict[str, Any]:
        return self._get("/v1/healthz")

    def version(self) -> str:
        return str(self.healthz().get("version", ""))

    def solvers(self) -> dict[str, Any]:
        """The shared listing: solvers, architectures and transform ops."""
        return self._get("/v1/solvers")

    def architectures(self) -> list[str]:
        return list(self._get("/v1/architectures")["architectures"])

    def catalog(self) -> dict[str, Any]:
        """The full model catalog: all five namespaces with provenance."""
        return self._get("/v1/catalog")

    def cache_stats(self) -> dict[str, Any]:
        return self._get("/v1/cache/stats")

    def metrics(self) -> dict[str, Any]:
        """The telemetry registry snapshot (the JSON form of ``/v1/metrics``)."""
        return self._get("/v1/metrics?format=json")

    def metrics_text(self) -> str:
        """``/v1/metrics`` in the Prometheus text exposition format."""
        request = urllib_request.Request(
            self.base_url + "/v1/metrics",
            headers={**self._trace_headers(), **self._deadline_header()},
        )
        with self._open(request) as response:
            return response.read().decode("utf-8")

    def traces(
        self,
        route: str | None = None,
        min_ms: float | None = None,
        errors_only: bool = False,
        limit: int = 50,
    ) -> list[dict[str, Any]]:
        """``GET /v1/traces`` — recent trace summaries, newest first."""
        params: dict[str, Any] = {"limit": limit}
        if route:
            params["route"] = route
        if min_ms is not None:
            params["min_ms"] = min_ms
        if errors_only:
            params["error"] = 1
        return list(
            self._get(f"/v1/traces?{urlencode(params)}")["traces"]
        )

    def trace(self, trace_id: str) -> dict[str, Any]:
        """``GET /v1/traces/{id}`` — one trace with its assembled tree."""
        return self._get(f"/v1/traces/{trace_id}")["trace"]

    # -- the Study surface ---------------------------------------------------
    def study(self, name: str = "remote-study") -> "RemoteStudy":
        """A fluent Study builder whose ``run()`` executes server-side."""
        return RemoteStudy(self, name)

    def explore(
        self,
        scenario: Scenario,
        solver: str = "auto",
        jobs: int | None = None,
        options: dict[str, Any] | None = None,
        stream: bool | None = None,
    ) -> ResultSet:
        """Run a scenario remotely; returns the same ``ResultSet`` shape.

        ``stream=None`` picks NDJSON automatically for sweeps of
        ``STREAM_THRESHOLD`` candidates or more.
        """
        if stream is None:
            stream = scenario.size >= STREAM_THRESHOLD
        payload: dict[str, Any] = {
            "scenario": scenario.to_dict(),
            "solver": solver,
        }
        if jobs is not None:
            payload["jobs"] = jobs
        if options:
            payload["options"] = options
        if stream:
            header, records = _split_ndjson(
                self._post("/v1/explore", payload, ndjson=True)
            )
        else:
            header = self._post("/v1/explore", payload)
            records = header.get("records", [])
        return _resultset_from_payload(header, records)

    def optimize(
        self,
        architecture: Any,
        technology: Any,
        frequency: float,
        solver: str = "numerical",
        **options: Any,
    ) -> Record:
        """Single-point solve; returns one :class:`~repro.study.Record`."""
        payload: dict[str, Any] = {
            "architecture": _as_jsonable(architecture),
            "technology": _as_jsonable(technology),
            "frequency": frequency,
            "solver": solver,
        }
        if options:
            payload["options"] = options
        response = self._post("/v1/optimize", payload)
        return Record.from_dict(response["record"])

    # -- the async job surface -----------------------------------------------
    def submit(
        self,
        scenario: Scenario,
        solver: str = "auto",
        options: dict[str, Any] | None = None,
        shards: int | None = None,
    ) -> AsyncResult:
        """``POST /v1/jobs`` — submit a sweep; returns an AsyncResult.

        The handle's ``wait()``/``result()``/``cancel()`` poll this
        client, so it behaves exactly like the one ``Study.submit()``
        returns for a local manager.

        Every submit mints a fresh ``Idempotency-Key``, so a retried
        POST (the response was lost, the retry loop re-sent it) maps to
        the job the first attempt created instead of enqueuing a twin.
        """
        payload: dict[str, Any] = {
            "scenario": scenario.to_dict(),
            "solver": solver,
        }
        if options:
            payload["options"] = options
        if shards is not None:
            payload["shards"] = shards
        response = self._request(
            "POST",
            "/v1/jobs",
            payload,
            extra_headers={"Idempotency-Key": uuid.uuid4().hex},
        )
        return AsyncResult(self, str(response["job"]["id"]))

    def job(self, job_id: str) -> dict[str, Any]:
        """``GET /v1/jobs/{id}`` — one job's status payload."""
        return self._get(f"/v1/jobs/{job_id}")["job"]

    def jobs(self) -> list[dict[str, Any]]:
        """``GET /v1/jobs`` — every job's status, newest first."""
        return list(self._get("/v1/jobs")["jobs"])

    def wait(
        self,
        job_id: str,
        timeout: float | None = None,
        poll: float = 0.2,
    ) -> dict[str, Any]:
        """Poll until the job is terminal; returns its final status.

        Raises :class:`~repro.jobs.JobTimeout` when ``timeout`` elapses
        first (the job keeps running server-side).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            payload = self.job(job_id)
            if payload.get("state") in ("done", "failed", "cancelled"):
                return payload
            if deadline is not None and time.monotonic() >= deadline:
                raise JobTimeout(
                    f"job {job_id} still {payload.get('state')!r} after "
                    f"{timeout:g} s"
                )
            self._sleep(poll)

    def cancel(self, job_id: str) -> dict[str, Any]:
        """``DELETE /v1/jobs/{id}`` — request cancellation."""
        return self._request("DELETE", f"/v1/jobs/{job_id}")["job"]

    def job_result(self, job_id: str, stream: bool = True) -> ResultSet:
        """``GET /v1/jobs/{id}/result`` — the merged ResultSet.

        Streams columnar NDJSON by default (job-sized sweeps are
        usually large); ``stream=False`` fetches one JSON document.
        """
        path = f"/v1/jobs/{job_id}/result"
        if stream:
            header, records = _split_ndjson(
                self._request("GET", path, ndjson=True)
            )
        else:
            header = self._get(path)
            records = header.get("records", [])
        return _resultset_from_payload(header, records)

    def job_events(
        self, job_id: str, timeout: float = 30.0
    ) -> Iterator[dict[str, Any]]:
        """``GET /v1/jobs/{id}/events`` — the NDJSON progress stream.

        Yields event dicts as the server emits them; the stream ends at
        a terminal state or after ``timeout`` seconds without news.
        """
        request = urllib_request.Request(
            f"{self.base_url}/v1/jobs/{job_id}/events?timeout={timeout:g}",
            headers={
                "Accept": NDJSON_CONTENT_TYPE,
                **self._trace_headers(),
                **self._deadline_header(),
            },
        )
        with self._open(request) as response:
            yield from _iter_ndjson(response)


class RemoteStudy(Study):
    """A :class:`~repro.study.Study` that runs on the service.

    Inherits the whole fluent builder; only execution changes —
    :meth:`run` ships the compiled scenario plus solve policy to
    ``POST /v1/explore`` and rebuilds the ``ResultSet`` from the
    response.  ``.cached()`` is accepted but a no-op client-side: the
    service owns the cache tiers.
    """

    def __init__(self, client: ServiceClient, name: str = "remote-study") -> None:
        super().__init__(name)
        self._client = client

    def run(self) -> ResultSet:
        return self._client.explore(
            self.scenario(),
            solver=self.solver_name,
            jobs=self._jobs,
            options=self._solver_options,
        )

    def submit(self, shards: int | None = None) -> AsyncResult:
        """Submit this study as an async job on the service."""
        return self._client.submit(
            self.scenario(),
            solver=self.solver_name,
            options=self._solver_options,
            shards=shards,
        )


# ---------------------------------------------------------------------------
# Payload plumbing.
# ---------------------------------------------------------------------------


def _as_jsonable(spec: Any) -> Any:
    if hasattr(spec, "to_dict"):
        return spec.to_dict()
    if hasattr(spec, "__dataclass_fields__"):
        from dataclasses import asdict

        return asdict(spec)
    return spec


def _iter_ndjson(response) -> Iterator[dict[str, Any]]:
    for raw in response:
        line = raw.strip()
        if line:
            yield json.loads(line.decode("utf-8"))


def _split_ndjson(
    lines: list[dict[str, Any]],
) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    if not lines or lines[0].get("kind") != "header":
        raise ServiceError(
            502, "bad-stream", "NDJSON stream did not start with a header line"
        )
    header = {k: v for k, v in lines[0].items() if k != "kind"}
    records = [
        {k: v for k, v in line.items() if k != "kind"}
        for line in lines[1:]
        if line.get("kind") == "record"
    ]
    return header, records


def _resultset_from_payload(
    header: dict[str, Any], records: list[dict[str, Any]]
) -> ResultSet:
    scenario = None
    if "scenario" in header:
        scenario = Scenario.from_dict(header["scenario"])
    stats = None
    if "stats" in header:
        stats = EvaluationStats.from_dict(header["stats"])
    cache = header.get("cache", {})
    return ResultSet(
        records=[Record.from_dict(record) for record in records],
        solver=str(header.get("solver", "")),
        scenario=scenario,
        stats=stats,
        cache_hit=bool(cache.get("hit", False)),
        cache_key=str(cache.get("key", "")),
        cache_path=None,
        partial=bool(header.get("partial", False)),
    )
