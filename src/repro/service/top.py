"""``repro top`` — a live terminal ops view of one running service.

Everything renders from two public endpoints — ``/v1/metrics?format=json``
and ``/v1/traces`` — so the dashboard sees exactly what any other
scraper sees; there is no private side channel.  One refresh is one
:meth:`Dashboard.refresh`: fetch both payloads (plus ``/v1/healthz``
for version/uptime), diff the request counter against the previous
refresh for a requests-per-second rate, and render:

* the headline: RPS, totals, error count, job queue depth, coalescer
  in-flight count, cache hit rates per tier;
* a per-route table: request count, error count, and p50/p95 latency
  estimated from the cumulative ``http_latency_seconds`` buckets (the
  same interpolation Prometheus's ``histogram_quantile`` applies);
* the most recent slow and error traces from the trace store, ready to
  paste into ``repro`` — or ``curl`` — as ``/v1/traces/{id}`` lookups.

The rendering functions are pure (payloads in, text out), so tests
exercise them without a server; only :func:`run_top` owns the
clear-screen/sleep loop.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Mapping, TextIO

from .client import ServiceClient
from .server import ServiceError

__all__ = [
    "Dashboard",
    "parse_instrument_key",
    "quantile_from_buckets",
    "render_dashboard",
    "run_top",
]

#: Trace rows shown in the "recent slow / error traces" section.
TRACE_ROWS = 8

#: Routes shown in the per-route table (busiest first).
ROUTE_ROWS = 12


def parse_instrument_key(key: str) -> tuple[str, dict[str, str]]:
    """A snapshot instrument key → ``(name, labels)``.

    Snapshot keys render as ``name`` or ``name{k=v,k2=v2}`` (see
    :attr:`repro.obs.metrics._Instrument.key`); label values never
    contain ``,`` or ``}`` in this repository's instruments.
    """
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    # Exactly one closing brace belongs to the key syntax; label values
    # may legitimately end in "}" (route templates like /v1/jobs/{id}).
    if rest.endswith("}"):
        rest = rest[:-1]
    labels: dict[str, str] = {}
    for pair in rest.split(","):
        label, separator, value = pair.partition("=")
        if separator:
            labels[label] = value
    return name, labels


def quantile_from_buckets(
    buckets: Mapping[str, int], quantile: float
) -> float | None:
    """Estimate a quantile from cumulative Prometheus-style buckets.

    ``buckets`` maps upper-bound labels (``"0.05"``, ``"+Inf"``) to
    cumulative counts.  Linear interpolation inside the winning bucket,
    as ``histogram_quantile`` does; a quantile landing in the +Inf
    bucket clamps to the largest finite bound.  None with no samples.
    """
    bounds: list[tuple[float, int]] = []
    for label, cumulative in buckets.items():
        bound = float("inf") if label == "+Inf" else float(label)
        bounds.append((bound, int(cumulative)))
    bounds.sort()
    if not bounds or bounds[-1][1] <= 0:
        return None
    rank = quantile * bounds[-1][1]
    previous_bound, previous_count = 0.0, 0
    for bound, cumulative in bounds:
        if cumulative >= rank:
            if bound == float("inf"):
                return previous_bound
            width = cumulative - previous_count
            fraction = (
                (rank - previous_count) / width if width > 0 else 1.0
            )
            return previous_bound + (bound - previous_bound) * fraction
        previous_bound, previous_count = bound, cumulative
    return previous_bound  # pragma: no cover - +Inf row always matches


def _route_table(snapshot: Mapping[str, Any]) -> list[dict[str, Any]]:
    """Per-route rows: requests, errors, p50/p95 — busiest first."""
    rows: dict[str, dict[str, Any]] = {}

    def row(route: str) -> dict[str, Any]:
        return rows.setdefault(
            route,
            {"route": route, "requests": 0, "errors": 0,
             "p50_ms": None, "p95_ms": None},
        )

    for key, value in snapshot.get("counters", {}).items():
        name, labels = parse_instrument_key(key)
        if name != "http.requests" or "route" not in labels:
            continue
        entry = row(labels["route"])
        entry["requests"] += int(value)
        try:
            status = int(labels.get("status", "0"))
        except ValueError:
            status = 0
        if status >= 500:
            entry["errors"] += int(value)
    for key, histogram in snapshot.get("histograms", {}).items():
        name, labels = parse_instrument_key(key)
        if name != "http.latency_seconds" or "route" not in labels:
            continue
        entry = row(labels["route"])
        buckets = histogram.get("buckets", {})
        for field, quantile in (("p50_ms", 0.5), ("p95_ms", 0.95)):
            seconds = quantile_from_buckets(buckets, quantile)
            if seconds is not None:
                entry[field] = seconds * 1e3
    return sorted(rows.values(), key=lambda r: -r["requests"])


def _counter(snapshot: Mapping[str, Any], name: str) -> float:
    """Sum a counter across all its label sets."""
    total = 0.0
    for key, value in snapshot.get("counters", {}).items():
        if parse_instrument_key(key)[0] == name:
            total += float(value)
    return total


def _gauge(snapshot: Mapping[str, Any], name: str) -> float | None:
    value = snapshot.get("gauges", {}).get(name)
    return None if value is None else float(value)


def _hit_rate(snapshot: Mapping[str, Any], tier: str) -> str:
    hits = _counter(snapshot, f"cache.{tier}.hits")
    misses = _counter(snapshot, f"cache.{tier}.misses")
    total = hits + misses
    if total <= 0:
        return f"{tier} -"
    return f"{tier} {hits / total:.0%} ({int(hits)}/{int(total)})"


def _format_ms(value: float | None) -> str:
    return "-" if value is None else f"{value:.1f}"


def _interesting_traces(
    traces: list[Mapping[str, Any]], rows: int = TRACE_ROWS
) -> list[Mapping[str, Any]]:
    """Errors first (newest first), then the slowest of the rest."""
    errors = [t for t in traces if t.get("error")]
    rest = sorted(
        (t for t in traces if not t.get("error")),
        key=lambda t: -float(t.get("duration_ms", 0.0)),
    )
    return (errors + rest)[:rows]


def render_dashboard(
    snapshot: Mapping[str, Any],
    traces: list[Mapping[str, Any]],
    healthz: Mapping[str, Any] | None = None,
    rps: float | None = None,
    base_url: str = "",
) -> str:
    """The whole dashboard as text (pure: payloads in, screen out)."""
    healthz = healthz or {}
    lines: list[str] = []
    uptime = healthz.get("uptime_seconds")
    header = "repro top"
    if base_url:
        header += f" — {base_url}"
    if healthz.get("version"):
        header += f"  v{healthz['version']}"
    if uptime is not None:
        header += f"  up {float(uptime):.0f}s"
    lines.append(header)

    if not snapshot.get("enabled", False):
        lines.append("telemetry is disabled on this server "
                     "(start without --no-telemetry)")
        return "\n".join(lines)

    total = _counter(snapshot, "http.requests")
    headline = f"requests {int(total)}"
    if rps is not None:
        headline += f"  rps {rps:.1f}"
    headline += f"  errors {int(healthz.get('errors', 0))}"
    queue_depth = _gauge(snapshot, "jobs.queue_depth")
    if queue_depth is not None:
        headline += f"  job-queue {int(queue_depth)}"
    in_flight = _gauge(snapshot, "coalescer.in_flight")
    if in_flight is not None:
        headline += f"  coalescer-in-flight {int(in_flight)}"
    lines.append(headline)
    lines.append(
        "cache: "
        + "  ".join(
            (_hit_rate(snapshot, "memory"), _hit_rate(snapshot, "disk"))
        )
    )

    routes = _route_table(snapshot)
    if routes:
        lines.append("")
        lines.append(
            f"{'route':<28} {'reqs':>7} {'err':>5} "
            f"{'p50 ms':>9} {'p95 ms':>9}"
        )
        for entry in routes[:ROUTE_ROWS]:
            lines.append(
                f"{entry['route']:<28} {entry['requests']:>7} "
                f"{entry['errors']:>5} "
                f"{_format_ms(entry['p50_ms']):>9} "
                f"{_format_ms(entry['p95_ms']):>9}"
            )

    lines.append("")
    lines.append("recent slow / error traces (GET /v1/traces/{id}):")
    interesting = _interesting_traces(traces)
    if not interesting:
        lines.append("  (none recorded yet)")
    for trace in interesting:
        marker = "  !!" if trace.get("error") else ""
        target = f"{trace.get('method', '')} {trace.get('route', '')}"
        lines.append(
            f"  {trace.get('trace_id', ''):<32} {target:<24} "
            f"{trace.get('status', 0):>4} "
            f"{float(trace.get('duration_ms', 0.0)):>9.1f} ms"
            f"{marker}"
        )
    return "\n".join(lines)


class Dashboard:
    """One service's dashboard state: fetch, diff for RPS, render."""

    def __init__(
        self, client: ServiceClient, clock=time.monotonic
    ) -> None:
        self.client = client
        self._clock = clock
        self._previous_total: float | None = None
        self._previous_time: float | None = None

    def refresh(self) -> str:
        snapshot = self.client.metrics()
        healthz = self.client.healthz()
        try:
            traces = self.client.traces(limit=100)
        except ServiceError as error:
            if error.kind != "tracing-disabled":
                raise
            traces = []
        now = self._clock()
        total = _counter(snapshot, "http.requests")
        rps = None
        if (
            self._previous_total is not None
            and self._previous_time is not None
            and now > self._previous_time
        ):
            rps = max(
                0.0,
                (total - self._previous_total) / (now - self._previous_time),
            )
        self._previous_total, self._previous_time = total, now
        return render_dashboard(
            snapshot,
            traces,
            healthz=healthz,
            rps=rps,
            base_url=self.client.base_url,
        )


#: The ANSI clear-screen + cursor-home prefix of each live refresh.
CLEAR_SCREEN = "\x1b[2J\x1b[H"


def run_top(
    client: ServiceClient,
    interval: float = 2.0,
    iterations: int | None = None,
    stream: TextIO = sys.stdout,
    clear: bool = True,
    sleep=time.sleep,
) -> int:
    """The refresh loop: render every ``interval`` seconds until stopped.

    ``iterations`` bounds the number of refreshes (``--once`` passes 1;
    None loops until KeyboardInterrupt, which the CLI catches).
    """
    dashboard = Dashboard(client)
    refreshed = 0
    while True:
        text = dashboard.refresh()
        if clear:
            stream.write(CLEAR_SCREEN)
        stream.write(text + "\n")
        stream.flush()
        refreshed += 1
        if iterations is not None and refreshed >= iterations:
            return 0
        sleep(interval)
