"""Request coalescing: N identical in-flight requests, one engine run.

A serving workload repeats itself — dashboards refresh, a class of
users asks the same design question — and the expensive moment is when
the *same* sweep arrives k times concurrently, before the first copy
has finished and populated the cache.  :class:`Coalescer` is the
single-flight guard for that moment: the first caller of a key becomes
the leader and computes; every concurrent caller with the same key
(the content hash the result cache already computes) waits on the
leader's flight and receives the same result object.  Sequential
repeats are the cache's job, not this module's — once the leader
finishes, the key is forgotten.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, TypeVar

from .. import obs
from ..resilience import current_deadline

__all__ = ["Coalescer"]

T = TypeVar("T")


class _Flight:
    """One in-progress computation: a latch plus its outcome slot."""

    __slots__ = ("done", "result", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None


class Coalescer:
    """Single-flight execution of keyed producers across threads.

    ``run(key, producer)`` returns ``(result, coalesced)`` where
    ``coalesced`` is True when this caller waited on another thread's
    run instead of computing.  A leader's exception propagates to the
    leader *and* every waiter (each waiter re-raises the same exception
    object), so a failed sweep fails every request that joined it
    rather than hanging or silently returning None.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: dict[str, _Flight] = {}
        self._leaders = 0
        self._coalesced = 0

    def run(self, key: str, producer: Callable[[], T]) -> tuple[T, bool]:
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = _Flight()
                self._flights[key] = flight
                leader = True
                self._leaders += 1
            else:
                leader = False
                self._coalesced += 1
        obs.inc("coalescer.leaders" if leader else "coalescer.merged")

        if not leader:
            # A waiter with a deadline must not outwait its own budget
            # just because the leader's request had a bigger one.
            deadline = current_deadline()
            while True:
                timeout = None if deadline is None else deadline.remaining()
                if flight.done.wait(timeout):
                    break
                deadline.check("coalesce.wait")
            if flight.error is not None:
                raise flight.error
            return flight.result, True

        try:
            flight.result = producer()
        except BaseException as error:
            flight.error = error
            raise
        finally:
            # Forget the key before releasing waiters: a request arriving
            # after this instant starts a fresh flight (and, on success,
            # will hit the cache instead anyway).
            with self._lock:
                self._flights.pop(key, None)
            flight.done.set()
        return flight.result, False

    @property
    def in_flight(self) -> int:
        with self._lock:
            return len(self._flights)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "leaders": self._leaders,
                "coalesced": self._coalesced,
                "in_flight": len(self._flights),
            }
