"""``repro serve`` — the exploration engine as a network service.

The ROADMAP's north star is a system that answers the paper's question
— *which (architecture, technology, Vdd, Vth) point minimises total
power at a target frequency?* — for heavy query traffic, not just for
one in-process :class:`~repro.study.Study`.  This package is that door:
a stdlib-only HTTP/JSON front end over the same Study/Scenario/solver
surface, built from four layers:

``memcache``
    A thread-safe in-memory LRU tier (:class:`MemoryCache`) with
    hit/miss/eviction counters, stacked in front of the on-disk
    :class:`~repro.explore.cache.ResultCache` as a
    :class:`TieredCache`.  The engine and ``Study.run`` route every
    cached sweep through it (see :func:`as_cache`), so the CLI gets the
    warm tier for free.
``coalesce``
    Request coalescing (:class:`Coalescer`): N concurrent identical
    scenarios — same content hash the cache already computes — trigger
    exactly one engine run whose result fans out to all waiters.
``server``
    The threaded HTTP front end (:class:`ExplorationServer`): bounded
    worker concurrency, request/latency logging, structured JSON
    errors, NDJSON streaming for large sweeps, and the ``/v1/*`` routes
    (``explore``, ``optimize``, ``solvers``, ``architectures``,
    ``healthz``, ``cache/stats``).
``client``
    :class:`ServiceClient` — a thin stdlib client whose
    :meth:`~ServiceClient.study` mirrors the :class:`~repro.study.Study`
    fluent API and returns the same :class:`~repro.study.ResultSet`.

Quick start::

    repro serve --port 8731            # terminal 1

    from repro.service import ServiceClient          # terminal 2
    client = ServiceClient("http://127.0.0.1:8731")
    answer = (
        client.study("remote")
        .architectures({"name": "w16", "n_cells": 729, "activity": 0.2976,
                        "logical_depth": 17, "capacitance": 70e-15})
        .technologies("ULL", "LL", "HS")
        .frequencies(31.25e6)
        .run()
    )
    print(answer.best().describe())

The heavy layers (``server``/``client`` pull in the full Study stack)
load lazily via PEP 562 so the cache tier stays importable from the
engine without cycles.
"""

from __future__ import annotations

from .coalesce import Coalescer
from .memcache import MemoryCache, TieredCache, as_cache, default_memory_cache

__all__ = [
    "Coalescer",
    "ExplorationServer",
    "MemoryCache",
    "RemoteStudy",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "TieredCache",
    "as_cache",
    "default_memory_cache",
]

_LAZY = {
    "ExplorationServer": "server",
    "ServiceConfig": "server",
    "RemoteStudy": "client",
    "ServiceClient": "client",
    "ServiceError": "client",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
