"""Tiered result caching: a thread-safe in-memory LRU over the disk cache.

The on-disk :class:`~repro.explore.cache.ResultCache` makes repeated
sweeps a file read; under serving traffic even that read (open + parse a
multi-megabyte JSON entry per request) dominates the response time.
:class:`MemoryCache` keeps the hottest payloads parsed in memory behind
a lock, :class:`TieredCache` stacks it in front of the disk tier
(memory hit → done; disk hit → promote; miss → evaluate, write both),
and :func:`as_cache` is the one place the engine and ``Study`` turn a
user-supplied cache spec into that stack — so the CLI and every
in-process caller ride the warm tier too, not just the HTTP service.

Payloads are stored by reference and must be treated as immutable by
consumers (the engine only ever parses them into frozen dataclasses).
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any

from .. import obs
from ..explore.cache import ResultCache

__all__ = [
    "DEFAULT_MEMORY_ENTRIES",
    "MEMORY_SIZE_ENV",
    "MemoryCache",
    "TieredCache",
    "as_cache",
    "default_memory_cache",
]

#: Default bound on the process-global memory tier.  Entries are whole
#: sweep payloads (potentially thousands of records each), so the bound
#: is deliberately modest; ``repro serve --cache-size`` and the env
#: override raise it for dedicated serving processes.
DEFAULT_MEMORY_ENTRIES = 64

#: Environment override for the global memory tier's entry bound.
MEMORY_SIZE_ENV = "REPRO_MEMCACHE_SIZE"


class MemoryCache:
    """Bounded, thread-safe LRU mapping cache key → payload dict.

    Mirrors the :class:`~repro.explore.cache.ResultCache` ``get``/``put``
    contract (None on miss, treat payloads as immutable) and counts
    hits, misses, puts and evictions so ``/v1/cache/stats`` and
    ``repro cache stats`` can show where requests are being served from.
    """

    def __init__(self, max_entries: int = DEFAULT_MEMORY_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._puts = 0
        self._evictions = 0

    def get(self, key: str) -> Any | None:
        with self._lock:
            try:
                payload = self._entries[key]
            except KeyError:
                self._misses += 1
                payload = None
            else:
                self._entries.move_to_end(key)
                self._hits += 1
        # Mirror into the global registry outside the LRU lock.
        if payload is None:
            obs.inc("cache.memory.misses")
        else:
            obs.inc("cache.memory.hits")
        return payload

    def put(self, key: str, payload: Any) -> None:
        evicted = 0
        with self._lock:
            self._entries[key] = payload
            self._entries.move_to_end(key)
            self._puts += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1
                evicted += 1
        obs.inc("cache.memory.puts")
        if evicted:
            obs.inc("cache.memory.evictions", evicted)

    def drop(self, key: str) -> bool:
        """Forget one entry (used when a payload proves corrupt)."""
        with self._lock:
            return self._entries.pop(key, None) is not None

    def clear(self) -> int:
        """Drop every entry (counters survive); returns the number dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self._hits,
                "misses": self._misses,
                "puts": self._puts,
                "evictions": self._evictions,
            }


_GLOBAL_LOCK = threading.Lock()
_GLOBAL_MEMORY: MemoryCache | None = None


def default_memory_cache() -> MemoryCache:
    """The process-global memory tier (created on first use).

    Sized by ``$REPRO_MEMCACHE_SIZE`` (read once, at creation).  Shared
    by every :func:`as_cache` stack in the process, with keys namespaced
    per disk directory so two caches over different directories cannot
    serve each other's entries.
    """
    global _GLOBAL_MEMORY
    with _GLOBAL_LOCK:
        if _GLOBAL_MEMORY is None:
            try:
                size = int(os.environ.get(MEMORY_SIZE_ENV, ""))
            except ValueError:
                size = 0
            _GLOBAL_MEMORY = MemoryCache(max(size, 1) if size > 0 else DEFAULT_MEMORY_ENTRIES)
        return _GLOBAL_MEMORY


class TieredCache:
    """Memory LRU in front of the on-disk JSON cache, one ``get``/``put``.

    Drop-in for :class:`~repro.explore.cache.ResultCache` where the
    engine and ``Study`` use it: ``get`` consults memory first and
    promotes disk hits, ``put`` writes through to both tiers and returns
    the disk path (so provenance like ``cache_path`` keeps pointing at
    an inspectable file).  ``path_for``/``entries``/``clear``/``prune``
    delegate to the disk tier; ``clear`` also drops this namespace's
    hold on the memory tier by clearing it outright.
    """

    def __init__(
        self,
        disk: ResultCache,
        memory: MemoryCache | None = None,
        namespace: str | None = None,
    ) -> None:
        self.disk = disk
        self.memory = memory if memory is not None else default_memory_cache()
        self.namespace = (
            namespace if namespace is not None else str(self.disk.directory)
        )

    @property
    def directory(self) -> Path:
        return self.disk.directory

    def _memory_key(self, key: str) -> str:
        return f"{self.namespace}\x00{key}"

    def path_for(self, key: str) -> Path:
        return self.disk.path_for(key)

    def get(self, key: str) -> dict | None:
        payload = self.memory.get(self._memory_key(key))
        if payload is not None:
            return payload
        payload = self.disk.get(key)
        if payload is not None:
            self.memory.put(self._memory_key(key), payload)
        return payload

    def put(self, key: str, payload: dict) -> Path:
        path = self.disk.put(key, payload)
        self.memory.put(self._memory_key(key), payload)
        return path

    def quarantine(self, key: str) -> bool:
        """Drop the key from memory and move the disk entry aside.

        Memory first: a semantically corrupt payload may already have
        been promoted, and quarantining only the file would keep serving
        it from the warm tier.
        """
        self.memory.drop(self._memory_key(key))
        return self.disk.quarantine(key)

    def entries(self) -> list[Path]:
        return self.disk.entries()

    def clear(self) -> int:
        self.memory.clear()
        return self.disk.clear()

    def prune(self, max_entries: int) -> int:
        return self.disk.prune(max_entries)

    def stats(self) -> dict[str, Any]:
        return {"memory": self.memory.stats(), "disk": self.disk.stats()}


def as_cache(
    cache: "TieredCache | ResultCache | str | Path | None",
    memory: MemoryCache | None = None,
) -> TieredCache:
    """Normalise a user-supplied cache spec to the two-tier stack.

    Accepts an existing :class:`TieredCache` (passed through), a bare
    :class:`ResultCache`, a directory, or None for the default disk
    location — the last three gain the (global, namespaced) memory tier.
    """
    if isinstance(cache, TieredCache):
        return cache
    if not isinstance(cache, ResultCache):
        cache = ResultCache(cache)
    return TieredCache(cache, memory=memory)
