"""The threaded HTTP/JSON front end over the Study/solver surface.

Pure standard library: :class:`ExplorationServer` is a
``ThreadingHTTPServer`` whose handler parses ``/v1/*`` routes, maps
user mistakes to structured 4xx JSON bodies and everything unexpected
to a 5xx, and logs one line per request with latency and provenance
(cache hit / coalesced).  Heavy work is bounded by a worker semaphore
(``--workers``) and deduplicated by the :class:`~.coalesce.Coalescer`,
then served through the tiered cache — so k identical concurrent
sweeps cost one engine run, and warm repeats cost a memory lookup.

Routes
------
``GET  /v1/healthz``       liveness + version + counters
``GET  /v1/solvers``       registered solvers / architectures / transforms
``GET  /v1/architectures`` generatable Table 1 architecture names
``GET  /v1/catalog``       the full model catalog (all five namespaces,
                           provenance included — pack entries show here)
``GET  /v1/cache/stats``   both cache tiers + coalescer counters
``GET  /v1/metrics``       telemetry registry: Prometheus text (default)
                           or JSON (``?format=json``)
``GET  /v1/traces``        recent request traces, newest first (filter by
                           ``route=``, ``min_ms=``, ``error=1``, ``limit=``)
``GET  /v1/traces/{id}``   one trace in full: the assembled span tree,
                           async job spans stitched under the request
``POST /v1/explore``       Scenario JSON in → records out (NDJSON optional)
``POST /v1/optimize``      one (architecture, technology, frequency) solve
``POST /v1/jobs``          submit a sweep as an async sharded job (202)
``GET  /v1/jobs``          list all jobs, newest first
``GET  /v1/jobs/{id}``     one job's state + progress counters
``GET  /v1/jobs/{id}/result``  the merged columnar result (NDJSON optional)
``GET  /v1/jobs/{id}/events``  NDJSON progress stream, follows to terminal
``DELETE /v1/jobs/{id}``   cancel (immediate when queued, at the next
                           shard boundary when running)

Every response carries an ``X-Request-Id`` header (the client's, when
it sent a well-formed one; minted otherwise); the same id appears in
the structured JSON access log line and in error bodies, so one grep
connects a client-side failure to the server-side record.

Distributed tracing rides the same path: a ``traceparent`` request
header (W3C shape, as :class:`~repro.obs.context.TraceContext` formats
it) is adopted, otherwise a trace is minted; with no ``X-Request-Id``
the request id defaults to the trace id's first 16 hex digits, so the
two correlate by prefix.  Each traced request's span tree — and, for
``POST /v1/jobs``, the async job's spans arriving later from the worker
threads — lands in the in-memory :class:`~repro.obs.trace_store.
TraceStore` served by ``/v1/traces``; the trace id is echoed on every
response as ``X-Trace-Id``.  Requests slower than
``slow_request_seconds`` additionally emit one structured
``slow_request`` warning line with the trace id.

``/v1/explore`` and ``/v1/optimize`` accept bare catalog names (builtin
or plugin-pack) anywhere a scenario accepts an architecture/technology
object; an unknown name comes back as a structured 400 with the
catalog's did-you-mean message.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Iterator
from urllib.parse import parse_qs, urlsplit

from .. import __version__, obs
from ..resilience import (
    DEADLINE_HEADER,
    AdmissionController,
    AdmissionRejected,
    Deadline,
    DeadlineExceeded,
    FAULTS_ENV,
    FaultPlan,
    active_deadline,
    faults,
    install_faults,
    uninstall_faults,
)
from ..explore.cache import content_hash
from ..explore.columnar import ResultRows
from ..explore.engine import cache_key_payload
from ..explore.scenario import FrequencyGrid, Scenario
from ..jobs import (
    JobCancelled,
    JobManager,
    JobNotFound,
    JobStateError,
    JobStore,
    default_jobs_dir,
)
from ..listing import architecture_names, catalog_payload, listing_payload
from ..solvers import SolverError, get_solver
from ..study import ResultSet, Study
from .coalesce import Coalescer
from .memcache import (
    DEFAULT_MEMORY_ENTRIES,
    MemoryCache,
    TieredCache,
    as_cache,
)

__all__ = [
    "DEFAULT_MAX_BODY",
    "ExplorationServer",
    "NDJSON_CONTENT_TYPE",
    "ServiceConfig",
    "ServiceError",
    "ServiceState",
]

logger = logging.getLogger("repro.service")

#: Largest accepted request body (a scenario JSON), in bytes.
DEFAULT_MAX_BODY = 1 << 20

NDJSON_CONTENT_TYPE = "application/x-ndjson"
JSON_CONTENT_TYPE = "application/json"


class ServiceError(Exception):
    """A request failure with an HTTP status and a machine-readable type.

    ``retry_after`` (seconds) becomes a ``Retry-After`` response header
    — shed/overload errors carry it so clients back off intelligently.
    ``details`` is an optional structured payload (partial progress on a
    504, shed reason on a 429/503).
    """

    def __init__(
        self,
        status: int,
        kind: str,
        message: str,
        retry_after: float | None = None,
        details: dict[str, Any] | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.kind = kind
        self.retry_after = retry_after
        self.details = details

    def to_payload(self) -> dict[str, Any]:
        error: dict[str, Any] = {
            "status": self.status,
            "type": self.kind,
            "message": str(self),
        }
        if self.retry_after is not None:
            error["retry_after"] = self.retry_after
        if self.details:
            error["details"] = self.details
        return {"error": error}


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of one server instance (mirrors the ``repro serve`` flags)."""

    host: str = "127.0.0.1"
    port: int = 8731
    workers: int = 4
    max_body: int = DEFAULT_MAX_BODY
    cache_dir: str | None = None
    cache_size: int = DEFAULT_MEMORY_ENTRIES
    use_cache: bool = True
    #: Where job state + results persist.  None derives a ``jobs``
    #: directory next to the cache entries (when ``cache_dir`` is set)
    #: or falls back to the user-level default, so jobs survive a
    #: server restart either way.
    jobs_dir: str | None = None
    #: Enable the process-global metrics registry (``/v1/metrics``).
    #: On by default for servers — a serving process is exactly where
    #: counters earn their keep; ``repro serve --no-telemetry`` opts out.
    #: Also gates request tracing (``/v1/traces``): with telemetry off
    #: no tracer is ever installed and the request path pays nothing.
    telemetry: bool = True
    #: Ring-buffer size of the in-memory trace store (whole traces).
    trace_capacity: int = obs.DEFAULT_TRACE_CAPACITY
    #: Requests at least this slow emit a structured ``slow_request``
    #: log line (seconds; None disables the slow log).
    slow_request_seconds: float | None = 1.0
    #: Admission queue depth beyond the worker pool: up to ``workers +
    #: admission_queue`` heavy requests are admitted concurrently; the
    #: next is shed with 429 + Retry-After instead of queueing blind.
    admission_queue: int = 16
    #: Optional cost budget: total points across admitted heavy requests
    #: (a lone request of any size always passes; None disables).
    admission_points: int | None = None
    #: The Retry-After hint (seconds) on shed responses.
    retry_after_seconds: float = 1.0
    #: Extra attempts a failed job shard gets before being poisoned.
    shard_retries: int = 1
    #: Job watchdog: with no shard finishing for this long, in-flight
    #: shards are presumed hung and re-queued (None disables).
    shard_timeout: float | None = None
    #: Fault-injection spec (``repro serve --faults``); empty/None falls
    #: back to ``$REPRO_FAULTS``; both empty leaves injection off.
    faults: str | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.max_body < 1:
            raise ValueError(f"max_body must be >= 1, got {self.max_body}")
        if self.trace_capacity < 1:
            raise ValueError(
                f"trace_capacity must be >= 1, got {self.trace_capacity}"
            )
        if self.admission_queue < 0:
            raise ValueError(
                f"admission_queue must be >= 0, got {self.admission_queue}"
            )
        if self.admission_points is not None and self.admission_points < 1:
            raise ValueError(
                "admission_points must be >= 1 or None, "
                f"got {self.admission_points}"
            )
        if self.retry_after_seconds <= 0:
            raise ValueError(
                "retry_after_seconds must be positive, "
                f"got {self.retry_after_seconds}"
            )
        if self.shard_retries < 0:
            raise ValueError(
                f"shard_retries must be >= 0, got {self.shard_retries}"
            )
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ValueError(
                "shard_timeout must be positive or None, "
                f"got {self.shard_timeout}"
            )
        if self.faults:
            # Fail at configure time, not on the first injected call.
            FaultPlan.parse(self.faults)


#: Signature of the pluggable evaluation hook: scenario + solve policy
#: in, ResultSet out.  Benchmarks and tests wrap the default to inject
#: latency or count invocations without monkey-patching the engine.
Evaluate = Callable[[Scenario, str, "int | None", dict[str, Any]], ResultSet]


@dataclass
class ServiceState:
    """Everything the handler threads share: caches, counters, policy."""

    config: ServiceConfig = field(default_factory=ServiceConfig)
    evaluate: Evaluate | None = None

    def __post_init__(self) -> None:
        # The service owns a private memory tier (sized by --cache-size)
        # so one process can host several servers with isolated budgets.
        self.cache: TieredCache = as_cache(
            self.config.cache_dir,
            memory=MemoryCache(self.config.cache_size),
        )
        self.coalescer = Coalescer()
        # The job manager shares this coalescer and cache, so a sweep
        # submitted as a job and posted inline concurrently is one
        # engine run, and a finished job warms the inline cache path.
        if self.config.jobs_dir:
            jobs_dir = Path(self.config.jobs_dir)
        elif self.config.cache_dir:
            jobs_dir = Path(self.config.cache_dir) / "jobs"
        else:
            jobs_dir = default_jobs_dir()
        # Tracing shares the telemetry switch: a TraceStore exists (and
        # request tracers are installed) only when telemetry is on.
        self.traces: obs.TraceStore | None = (
            obs.TraceStore(capacity=self.config.trace_capacity)
            if self.config.telemetry
            else None
        )
        self.jobs = JobManager(
            store=JobStore(jobs_dir),
            cache=self.cache,
            use_cache=self.config.use_cache,
            coalescer=self.coalescer,
            trace_store=self.traces,
            max_shard_retries=self.config.shard_retries,
            shard_timeout=self.config.shard_timeout,
        )
        self.work_semaphore = threading.BoundedSemaphore(self.config.workers)
        # Heavy requests (explore/optimize) pass this gate before the
        # worker semaphore: up to workers + admission_queue admitted,
        # the rest shed fast with Retry-After.
        self.admission = AdmissionController(
            limit=self.config.workers + self.config.admission_queue,
            max_points=self.config.admission_points,
            retry_after=self.config.retry_after_seconds,
        )
        # Arm fault injection from config or environment (tests and
        # chaos CI); production leaves both empty and pays nothing.
        self._faults_installed = False
        spec = self.config.faults or os.environ.get(FAULTS_ENV, "")
        if spec:
            install_faults(FaultPlan.parse(spec))
            self._faults_installed = True
            logger.warning("fault injection armed: %s", spec)
        # Two clocks on purpose: the wall clock says *when* the service
        # started (for humans and log correlation); the monotonic clock
        # measures uptime, immune to NTP steps and DST.
        self.started_at = time.time()
        self.started_monotonic = time.monotonic()
        if self.config.telemetry:
            obs.enable()
        self._counters_lock = threading.Lock()
        self.requests = 0
        self.errors = 0
        self.engine_runs = 0
        self.deadline_breaches = 0
        if self.evaluate is None:
            self.evaluate = self._evaluate_study

    def close(self) -> None:
        """Release owned resources (the job manager, armed faults)."""
        self.jobs.close()
        if self._faults_installed:
            uninstall_faults()
            self._faults_installed = False

    # -- counters ------------------------------------------------------------
    def count_request(self) -> None:
        with self._counters_lock:
            self.requests += 1

    def count_error(self) -> None:
        with self._counters_lock:
            self.errors += 1

    def count_engine_run(self) -> None:
        with self._counters_lock:
            self.engine_runs += 1

    def count_deadline_breach(self) -> None:
        with self._counters_lock:
            self.deadline_breaches += 1

    # -- evaluation ----------------------------------------------------------
    def _evaluate_study(
        self,
        scenario: Scenario,
        solver: str,
        jobs: int | None,
        options: dict[str, Any],
    ) -> ResultSet:
        return (
            Study.from_scenario(scenario)
            .solver(solver, **options)
            .jobs(jobs)
            .cached(self.cache, enabled=self.config.use_cache)
            .run()
        )

    def run_scenario(
        self,
        scenario: Scenario,
        solver: str,
        jobs: int | None,
        options: dict[str, Any],
    ) -> tuple[ResultSet, bool]:
        """One bounded, coalesced, cached evaluation → (result, coalesced)."""
        key = content_hash(
            {
                **cache_key_payload(scenario),
                "solver": solver,
                "options": options,
            }
        )

        def produce() -> ResultSet:
            with self.admission.admit(cost=scenario.size):
                with self.work_semaphore:
                    result = self.evaluate(scenario, solver, jobs, options)
            if not result.cache_hit:
                self.count_engine_run()
            return result

        try:
            return self.coalescer.run(key, produce)
        except JobCancelled:
            # This request joined a job's flight and the job was then
            # cancelled.  Cancellation binds the job, not this caller —
            # retry once on a fresh flight (usually a cache hit by now).
            return self.coalescer.run(key, produce)

    # -- introspection payloads ---------------------------------------------
    def healthz_payload(self) -> dict[str, Any]:
        with self._counters_lock:
            requests, errors, engine_runs, deadline_breaches = (
                self.requests,
                self.errors,
                self.engine_runs,
                self.deadline_breaches,
            )
        return {
            "status": "ok",
            "service": "repro",
            "version": __version__,
            "admission": self.admission.snapshot(),
            "deadline_breaches": deadline_breaches,
            "faults_armed": self._faults_installed,
            "started_at": round(self.started_at, 3),
            "uptime_seconds": round(
                time.monotonic() - self.started_monotonic, 3
            ),
            "workers": self.config.workers,
            "requests": requests,
            "errors": errors,
            "engine_runs": engine_runs,
            "coalescer": self.coalescer.stats(),
            "cache_enabled": self.config.use_cache,
            "telemetry": self.config.telemetry,
            "jobs": self.jobs.store.stats(),
            "traces": self.traces.stats() if self.traces is not None else None,
        }

    def cache_stats_payload(self) -> dict[str, Any]:
        with self._counters_lock:
            engine_runs = self.engine_runs
        return {
            "enabled": self.config.use_cache,
            "engine_runs": engine_runs,
            "coalescer": self.coalescer.stats(),
            **self.cache.stats(),
        }

    def refresh_gauges(self) -> None:
        """Point-in-time gauges, refreshed at scrape time (not per event)."""
        if not obs.is_enabled():
            return
        obs.set_gauge(
            "service.uptime_seconds",
            time.monotonic() - self.started_monotonic,
        )
        obs.set_gauge("cache.memory.entries", len(self.cache.memory))
        obs.set_gauge("coalescer.in_flight", self.coalescer.in_flight)
        obs.set_gauge("jobs.queue_depth", self.jobs.queue_depth)
        obs.set_gauge("admission.depth", self.admission.depth)
        with self._counters_lock:
            breaches = self.deadline_breaches
        obs.set_gauge("deadline.breached", breaches)


# ---------------------------------------------------------------------------
# Request parsing (kept free of the HTTP handler so tests can hit it raw).
# ---------------------------------------------------------------------------


def _require(payload: dict[str, Any], key: str) -> Any:
    try:
        return payload[key]
    except KeyError:
        raise ServiceError(
            400, "missing-field", f"request body is missing {key!r}"
        ) from None


def _parse_solver(payload: dict[str, Any]) -> tuple[str, dict[str, Any]]:
    solver = payload.get("solver", "auto")
    options = payload.get("options", {})
    if not isinstance(solver, str):
        raise ServiceError(400, "bad-solver", "'solver' must be a string name")
    if not isinstance(options, dict):
        raise ServiceError(400, "bad-options", "'options' must be an object")
    try:
        get_solver(solver)
    except SolverError as error:
        raise ServiceError(400, "unknown-solver", str(error)) from None
    return solver, options


def _parse_jobs(payload: dict[str, Any]) -> int | None:
    jobs = payload.get("jobs")
    if jobs is None:
        return None
    if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
        raise ServiceError(
            400, "bad-jobs", f"'jobs' must be a positive integer, got {jobs!r}"
        )
    return jobs


def parse_explore_request(
    payload: dict[str, Any],
) -> tuple[Scenario, str, int | None, dict[str, Any]]:
    """``POST /v1/explore`` body → (scenario, solver, jobs, options)."""
    scenario_spec = _require(payload, "scenario")
    if not isinstance(scenario_spec, dict):
        raise ServiceError(
            400, "bad-scenario", "'scenario' must be a Scenario JSON object"
        )
    try:
        scenario = Scenario.from_dict(scenario_spec)
    except (KeyError, TypeError, ValueError) as error:
        raise ServiceError(
            400, "bad-scenario", f"invalid scenario: {error!r}"
        ) from None
    solver, options = _parse_solver(payload)
    return scenario, solver, _parse_jobs(payload), options


def parse_optimize_request(
    payload: dict[str, Any],
) -> tuple[Scenario, str, dict[str, Any]]:
    """``POST /v1/optimize`` body → (single-point scenario, solver, options)."""
    architecture = _require(payload, "architecture")
    technology = _require(payload, "technology")
    frequency = _require(payload, "frequency")
    if not isinstance(frequency, (int, float)) or frequency <= 0:
        raise ServiceError(
            400,
            "bad-frequency",
            f"'frequency' must be a positive number [Hz], got {frequency!r}",
        )
    try:
        scenario = Scenario.from_dict(
            {
                "name": payload.get("name", "optimize"),
                "architectures": [architecture],
                "technologies": [technology],
                "frequencies": FrequencyGrid.single(float(frequency)).to_dict(),
            }
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ServiceError(
            400, "bad-point", f"invalid optimize request: {error!r}"
        ) from None
    solver = payload.copy()
    solver.setdefault("solver", "numerical")
    name, options = _parse_solver(solver)
    return scenario, name, options


def _header_payload(result: ResultSet, coalesced: bool) -> dict[str, Any]:
    """Provenance shared by both response formats (everything but records)."""
    payload: dict[str, Any] = {
        "solver": result.solver,
        "n_records": len(result),
        "coalesced": coalesced,
        "cache": {"hit": result.cache_hit, "key": result.cache_key},
    }
    if result.partial:
        payload["partial"] = True
    if result.scenario is not None:
        payload["scenario"] = result.scenario.to_dict()
    if result.stats is not None:
        payload["stats"] = result.stats.to_dict()
    return payload


def resultset_payload(result: ResultSet, coalesced: bool) -> dict[str, Any]:
    """The ``/v1/explore`` response body (everything the client rebuilds)."""
    return {**_header_payload(result, coalesced), "records": result.to_dicts()}


#: Records serialised per chunk of the NDJSON stream (one socket write
#: per chunk instead of one per record).
NDJSON_CHUNK_ROWS = 2048


def ndjson_lines(result: ResultSet, coalesced: bool) -> "Iterator[str]":
    """The same response as NDJSON: one header line, one line per record.

    A generator of newline-joined chunks, so large sweeps stream for
    real — the response is never materialised as a whole.  Table-backed
    result sets (every engine run) serialise straight from the column
    arrays, :data:`NDJSON_CHUNK_ROWS` records per chunk, without
    materialising a single record object; the wire format is unchanged
    (one JSON document per line, sorted keys).
    """
    yield json.dumps(
        {"kind": "header", **_header_payload(result, coalesced)},
        sort_keys=True,
    )
    records = result.records
    if isinstance(records, ResultRows):
        yield from records.table.iter_ndjson_chunks(
            chunk_rows=NDJSON_CHUNK_ROWS
        )
        return
    for record in records:
        yield json.dumps(
            {"kind": "record", **record.to_dict()}, sort_keys=True
        )


# ---------------------------------------------------------------------------
# HTTP plumbing.
# ---------------------------------------------------------------------------

#: Characters allowed through from a client-supplied X-Request-Id; the
#: id lands in headers and log lines, so anything else is dropped.
_REQUEST_ID_SAFE = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_."
)
_REQUEST_ID_MAX = 64


def _request_id_from(header: str | None) -> str:
    """Propagate a sane client-supplied request id, else mint one."""
    if header:
        candidate = "".join(
            c for c in header[:_REQUEST_ID_MAX] if c in _REQUEST_ID_SAFE
        )
        if candidate:
            return candidate
    return uuid.uuid4().hex[:16]


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: "ExplorationServer"

    # -- dispatch ------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch(
            {
                "/v1/healthz": self._route_healthz,
                "/v1/solvers": self._route_solvers,
                "/v1/architectures": self._route_architectures,
                "/v1/catalog": self._route_catalog,
                "/v1/cache/stats": self._route_cache_stats,
                "/v1/metrics": self._route_metrics,
                "/v1/traces": self._route_traces_list,
                "/v1/jobs": self._route_jobs_list,
            }
        )

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch(
            {
                "/v1/explore": self._route_explore,
                "/v1/optimize": self._route_optimize,
                "/v1/jobs": self._route_jobs_submit,
            }
        )

    def do_DELETE(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch({})

    def _dispatch(self, routes: dict[str, Callable[[], None]]) -> None:
        state = self.server.state
        state.count_request()
        self._started = time.perf_counter()
        self._note = ""
        self._status = 0
        self._slow_exempt = False
        self._request_id = _request_id_from(self.headers.get("X-Request-Id"))
        split = urlsplit(self.path)
        self._query = parse_qs(split.query)
        self._route_label = split.path.rstrip("/") or "/"
        route = routes.get(self._route_label)
        if route is None:
            route = self._match_jobs_route() or self._match_traces_route()
        self._begin_trace()
        try:
            deadline = self._parse_deadline()
            if route is None:
                known = "/v1/healthz, /v1/solvers, /v1/architectures, " \
                    "/v1/catalog, /v1/cache/stats, /v1/metrics, " \
                    "/v1/traces, /v1/traces/{id}, " \
                    "/v1/explore (POST), /v1/optimize (POST), " \
                    "/v1/jobs (GET/POST), /v1/jobs/{id} (GET/DELETE), " \
                    "/v1/jobs/{id}/result, /v1/jobs/{id}/events"
                raise ServiceError(
                    404 if self._path_known(split.path) is None else 405,
                    "not-found",
                    f"no route {self.command} {split.path}; known: {known}",
                )
            # The client's budget becomes this thread's cooperative
            # deadline for the whole route: the engine's chunk checks,
            # the coalescer's waiter path and anything else below reads
            # it thread-locally.
            with active_deadline(deadline):
                route()
        except DeadlineExceeded as error:
            state.count_error()
            state.count_deadline_breach()
            obs.inc("deadline.breaches", route=self._route_label)
            self._send_error(
                ServiceError(
                    504,
                    "deadline-exceeded",
                    f"request deadline exceeded at {error.site or '?'}: "
                    f"{error}",
                    details={
                        "site": error.site,
                        "budget_ms": error.budget_ms,
                        "progress": error.progress,
                    },
                )
            )
        except AdmissionRejected as error:
            state.count_error()
            self._send_error(
                ServiceError(
                    error.status,
                    "admission-shed",
                    str(error),
                    retry_after=error.retry_after,
                    details={
                        "reason": error.reason,
                        "depth": error.depth,
                    },
                )
            )
        except JobNotFound as error:
            state.count_error()
            self._send_error(ServiceError(404, "job-not-found", str(error)))
        except JobStateError as error:
            state.count_error()
            self._send_error(ServiceError(409, "job-state", str(error)))
        except ServiceError as error:
            state.count_error()
            self._send_error(error)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass
        except Exception as error:  # noqa: BLE001 — the 5xx boundary
            state.count_error()
            logger.exception("internal error on %s %s", self.command, self.path)
            self._send_error(
                ServiceError(
                    500, "internal", f"{type(error).__name__}: {error}"
                )
            )
        finally:
            self._finish_trace()

    def _error_payload(self, error: ServiceError) -> dict[str, Any]:
        payload = error.to_payload()
        payload["error"]["request_id"] = self._request_id
        return payload

    def _send_error(self, error: ServiceError) -> None:
        headers: dict[str, str] = {}
        if error.retry_after is not None:
            headers["Retry-After"] = f"{error.retry_after:g}"
        self._send_json(
            error.status, self._error_payload(error), headers=headers
        )

    def _parse_deadline(self) -> Deadline | None:
        """The request's ``X-Deadline-Ms`` budget, or None when absent."""
        header = self.headers.get(DEADLINE_HEADER)
        if not header:
            return None
        try:
            return Deadline.from_header(header)
        except ValueError as error:
            raise ServiceError(400, "bad-deadline", str(error)) from None

    # -- tracing --------------------------------------------------------------
    def _begin_trace(self) -> None:
        """Open this request's trace: adopt/mint a context, root a span.

        With tracing off (no store), this sets the two attributes the
        rest of the handler reads and returns — the request path pays
        two ``None`` assignments.  Otherwise a per-request tracer is
        installed on the handler thread, an ``http.request`` root span
        opens, and the thread's :class:`~repro.obs.TraceContext` is
        positioned *under* that root, so anything the route submits to
        other threads (a job) parents beneath the request span.
        """
        self._trace_tracer = None
        self._trace_span = None
        self._trace_context = None
        if self.server.state.traces is None:
            return
        incoming = obs.parse_traceparent(
            self.headers.get(obs.TRACEPARENT_HEADER)
        )
        context = incoming if incoming is not None else obs.TraceContext.mint()
        if not self.headers.get("X-Request-Id"):
            # No explicit request id: correlate by trace-id prefix.
            self._request_id = context.request_id
        tracer = obs.install_tracer(obs.SpanTracer())
        obs.set_context(context)
        span = tracer.span(
            "http.request", method=self.command, route=self._route_label
        )
        span.__enter__()
        self._trace_tracer = tracer
        self._trace_span = span
        self._trace_context = obs.TraceContext(
            context.trace_id, span.span_id, context.sampled
        )
        obs.set_context(self._trace_context)

    def _finish_trace(self) -> None:
        """Close the request span, record the trace, emit the slow log."""
        elapsed = time.perf_counter() - self._started
        status = self._status
        state = self.server.state
        tracer, span = self._trace_tracer, self._trace_span
        trace_id = ""
        if tracer is not None and span is not None:
            trace_id = self._trace_context.trace_id
            span.labels["route"] = self._route_label
            span.labels["status"] = str(status)
            if status >= 500 and span.status == "ok":
                span.status = "error"
                span.error = f"http {status}"
            span.__exit__(None, None, None)
            obs.uninstall_tracer()
            obs.clear_context()
            self._trace_tracer = None
            self._trace_span = None
            if state.traces is not None:
                state.traces.record(
                    trace_id,
                    request_id=self._request_id,
                    route=self._route_label,
                    method=self.command,
                    status=status,
                    duration_seconds=elapsed,
                    error=status >= 500,
                    spans=tracer.to_dict()["roots"],
                )
        threshold = state.config.slow_request_seconds
        if (
            threshold is not None
            and elapsed >= threshold
            and not self._slow_exempt
        ):
            logger.warning(
                "%s",
                json.dumps(
                    {
                        "event": "slow_request",
                        "trace_id": trace_id,
                        "request_id": self._request_id,
                        "method": self.command,
                        "route": self._route_label,
                        "status": status,
                        "ms": round(elapsed * 1e3, 2),
                        "threshold_ms": round(threshold * 1e3, 2),
                    },
                    sort_keys=True,
                ),
            )

    _ALL_ROUTES = {
        "/v1/healthz": ("GET",),
        "/v1/solvers": ("GET",),
        "/v1/architectures": ("GET",),
        "/v1/catalog": ("GET",),
        "/v1/cache/stats": ("GET",),
        "/v1/metrics": ("GET",),
        "/v1/traces": ("GET",),
        "/v1/explore": ("POST",),
        "/v1/optimize": ("POST",),
        "/v1/jobs": ("GET", "POST"),
    }

    def _path_known(self, path: str):
        label = path.rstrip("/") or "/"
        methods = self._ALL_ROUTES.get(label)
        if methods is not None:
            return methods
        parts = label.split("/")
        if len(parts) >= 4 and parts[1:3] == ["v1", "jobs"] and parts[3]:
            if len(parts) == 4:
                return ("GET", "DELETE")
            if len(parts) == 5 and parts[4] in ("result", "events"):
                return ("GET",)
        if len(parts) == 4 and parts[1:3] == ["v1", "traces"] and parts[3]:
            return ("GET",)
        return None

    def _match_jobs_route(self) -> Callable[[], None] | None:
        """Resolve the dynamic ``/v1/jobs/{id}[...]`` routes.

        Rewrites ``_route_label`` to the route *template* on a match, so
        metrics and logs aggregate per route instead of per job id.
        """
        parts = self._route_label.split("/")
        if (
            len(parts) not in (4, 5)
            or parts[1:3] != ["v1", "jobs"]
            or not parts[3]
        ):
            return None
        job_id = parts[3]
        tail = parts[4] if len(parts) == 5 else ""
        if self.command == "GET" and not tail:
            self._route_label = "/v1/jobs/{id}"
            return lambda: self._route_job_status(job_id)
        if self.command == "DELETE" and not tail:
            self._route_label = "/v1/jobs/{id}"
            return lambda: self._route_job_cancel(job_id)
        if self.command == "GET" and tail == "result":
            self._route_label = "/v1/jobs/{id}/result"
            return lambda: self._route_job_result(job_id)
        if self.command == "GET" and tail == "events":
            self._route_label = "/v1/jobs/{id}/events"
            return lambda: self._route_job_events(job_id)
        return None

    def _match_traces_route(self) -> Callable[[], None] | None:
        """Resolve ``GET /v1/traces/{trace_id}`` (same label rewrite)."""
        parts = self._route_label.split("/")
        if (
            self.command == "GET"
            and len(parts) == 4
            and parts[1:3] == ["v1", "traces"]
            and parts[3]
        ):
            trace_id = parts[3]
            self._route_label = "/v1/traces/{id}"
            return lambda: self._route_trace(trace_id)
        return None

    # -- routes --------------------------------------------------------------
    def _route_healthz(self) -> None:
        self._send_json(200, self.server.state.healthz_payload())

    def _route_solvers(self) -> None:
        self._send_json(200, listing_payload())

    def _route_architectures(self) -> None:
        self._send_json(200, {"architectures": architecture_names()})

    def _route_catalog(self) -> None:
        self._send_json(200, catalog_payload())

    def _route_cache_stats(self) -> None:
        self._send_json(200, self.server.state.cache_stats_payload())

    def _route_metrics(self) -> None:
        """Prometheus text by default; ``?format=json`` (or an Accept
        header preferring JSON) returns the registry snapshot instead."""
        self.server.state.refresh_gauges()
        wants_json = self._query.get("format", [""])[0].lower() == "json" or (
            JSON_CONTENT_TYPE in self.headers.get("Accept", "")
        )
        if wants_json:
            self._send_json(200, obs.snapshot())
            return
        registry = obs.get_registry()
        text = obs.prometheus_text(registry) if registry is not None else ""
        self._send_text(200, text, obs.PROMETHEUS_CONTENT_TYPE)

    def _trace_store(self) -> obs.TraceStore:
        store = self.server.state.traces
        if store is None:
            raise ServiceError(
                503,
                "tracing-disabled",
                "request tracing is off (the server runs with telemetry "
                "disabled); start without --no-telemetry to record traces",
            )
        return store

    def _route_traces_list(self) -> None:
        store = self._trace_store()
        route = self._query.get("route", [""])[0] or None
        min_ms_text = self._query.get("min_ms", [""])[0]
        try:
            min_ms = float(min_ms_text) if min_ms_text else None
        except ValueError:
            raise ServiceError(
                400, "bad-min-ms", "'min_ms' must be a number of milliseconds"
            ) from None
        errors_only = self._query.get("error", [""])[0].lower() in (
            "1", "true", "yes",
        )
        limit_text = self._query.get("limit", [""])[0]
        try:
            limit = int(limit_text) if limit_text else 50
        except ValueError:
            raise ServiceError(
                400, "bad-limit", "'limit' must be a positive integer"
            ) from None
        if limit < 1:
            raise ServiceError(
                400, "bad-limit", f"'limit' must be >= 1, got {limit}"
            )
        self._send_json(
            200,
            {
                "traces": store.summaries(
                    route=route,
                    min_duration_ms=min_ms,
                    errors_only=errors_only,
                    limit=limit,
                ),
                "stats": store.stats(),
            },
        )

    def _route_trace(self, trace_id: str) -> None:
        trace = self._trace_store().get(trace_id)
        if trace is None:
            raise ServiceError(
                404,
                "trace-not-found",
                f"no trace {trace_id!r} in the store (it may have been "
                "evicted; the store keeps the most recent "
                f"{self.server.state.config.trace_capacity} traces)",
            )
        self._send_json(200, {"trace": trace})

    def _route_explore(self) -> None:
        scenario, solver, jobs, options = parse_explore_request(
            self._read_json_body()
        )
        result, coalesced = self.server.state.run_scenario(
            scenario, solver, jobs, options
        )
        self._note = (
            f"{scenario.size} candidates"
            f"{' cache-hit' if result.cache_hit else ''}"
            f"{' coalesced' if coalesced else ''}"
        )
        if self._wants_ndjson():
            self._send_ndjson(ndjson_lines(result, coalesced))
        else:
            self._send_json(200, resultset_payload(result, coalesced))

    def _route_optimize(self) -> None:
        scenario, solver, options = parse_optimize_request(
            self._read_json_body()
        )
        result, coalesced = self.server.state.run_scenario(
            scenario, solver, None, options
        )
        record = result[0]
        self._note = "cache-hit" if result.cache_hit else "evaluated"
        self._send_json(
            200,
            {
                "solver": result.solver,
                "coalesced": coalesced,
                "cache": {"hit": result.cache_hit, "key": result.cache_key},
                "record": record.to_dict(),
            },
        )

    # -- job routes ----------------------------------------------------------
    def _route_jobs_list(self) -> None:
        self._send_json(200, {"jobs": self.server.state.jobs.jobs()})

    def _route_jobs_submit(self) -> None:
        payload = self._read_json_body()
        scenario, solver, _, options = parse_explore_request(payload)
        shards = payload.get("shards")
        if shards is not None and (
            not isinstance(shards, int)
            or isinstance(shards, bool)
            or shards < 1
        ):
            raise ServiceError(
                400,
                "bad-shards",
                f"'shards' must be a positive integer, got {shards!r}",
            )
        deadline_ms = payload.get("deadline_ms")
        if deadline_ms is not None and (
            not isinstance(deadline_ms, int)
            or isinstance(deadline_ms, bool)
            or deadline_ms < 1
        ):
            raise ServiceError(
                400,
                "bad-deadline",
                "'deadline_ms' must be a positive integer number of "
                f"milliseconds, got {deadline_ms!r}",
            )
        idempotency_key = (self.headers.get("Idempotency-Key") or "").strip()
        if len(idempotency_key) > 128:
            raise ServiceError(
                400,
                "bad-idempotency-key",
                "Idempotency-Key must be at most 128 characters",
            )
        jobs = self.server.state.jobs
        reused = bool(
            idempotency_key
            and jobs.store.find_by_idempotency_key(idempotency_key)
            is not None
        )
        record = jobs.submit(
            scenario,
            solver=solver,
            options=options,
            shards=shards,
            idempotency_key=idempotency_key,
            deadline_ms=deadline_ms,
        )
        self._note = (
            f"job {record.id} "
            + ("deduplicated" if reused else "queued")
            + f" ({scenario.size} candidates)"
        )
        self._send_json(
            202, {"job": record.to_payload(), "deduplicated": reused}
        )

    def _route_job_status(self, job_id: str) -> None:
        self._send_json(200, {"job": self.server.state.jobs.job(job_id)})

    def _route_job_cancel(self, job_id: str) -> None:
        payload = self.server.state.jobs.cancel(job_id)
        self._note = f"job {job_id} cancel requested"
        self._send_json(200, {"job": payload})

    def _route_job_result(self, job_id: str) -> None:
        result, coalesced = self.server.state.jobs.job_result_response(job_id)
        self._note = f"job {job_id} result ({len(result)} records)"
        if self._wants_ndjson():
            self._send_ndjson(ndjson_lines(result, coalesced))
        else:
            self._send_json(200, resultset_payload(result, coalesced))

    def _route_job_events(self, job_id: str) -> None:
        state = self.server.state
        # A follow stream is slow by design (it blocks until the job
        # ends or the timeout lapses) — not a slow-log candidate.
        self._slow_exempt = True
        state.jobs.job(job_id)  # a 404 must fire before headers go out
        try:
            timeout = float(self._query.get("timeout", ["30"])[0])
        except ValueError:
            raise ServiceError(
                400, "bad-timeout", "'timeout' must be a number of seconds"
            ) from None
        self._send_ndjson(
            json.dumps(event, sort_keys=True)
            for event in state.jobs.stream_events(job_id, timeout=timeout)
        )

    # -- request / response helpers ------------------------------------------
    def _read_json_body(self) -> dict[str, Any]:
        length_header = self.headers.get("Content-Length")
        try:
            length = int(length_header or "")
        except ValueError:
            raise ServiceError(
                411, "length-required", "Content-Length header is required"
            ) from None
        if length < 0:
            # -1 would make rfile.read block until the client closes,
            # pinning a handler thread per malformed connection.
            raise ServiceError(
                400,
                "bad-length",
                f"Content-Length must be non-negative, got {length}",
            )
        max_body = self.server.state.config.max_body
        if length > max_body:
            raise ServiceError(
                413,
                "body-too-large",
                f"request body of {length} bytes exceeds the "
                f"{max_body}-byte limit",
            )
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServiceError(
                400, "bad-json", f"request body is not valid JSON: {error}"
            ) from None
        if not isinstance(payload, dict):
            raise ServiceError(
                400, "bad-json", "request body must be a JSON object"
            )
        return payload

    def _wants_ndjson(self) -> bool:
        stream = self._query.get("stream", [""])[0].lower()
        if stream in ("1", "true", "ndjson", "yes"):
            return True
        accept = self.headers.get("Accept", "")
        return NDJSON_CONTENT_TYPE in accept

    def _send_trace_headers(self) -> None:
        self.send_header("X-Request-Id", self._request_id)
        context = getattr(self, "_trace_context", None)
        if context is not None:
            self.send_header("X-Trace-Id", context.trace_id)

    def _send_json(
        self,
        status: int,
        payload: dict[str, Any],
        headers: dict[str, str] | None = None,
    ) -> None:
        if status < 400:
            # Injectable response failure — success paths only, so the
            # error handler sending the resulting 500 cannot re-fire it.
            faults.check("http.response")
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", JSON_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self._send_trace_headers()
        self.end_headers()
        self.wfile.write(body)
        self._log_request(status, len(body))

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self._send_trace_headers()
        self.end_headers()
        self.wfile.write(body)
        self._log_request(status, len(body))

    def _send_ndjson(self, lines: "Iterator[str]") -> None:
        # Injected before the status line goes out, so a response fault
        # still surfaces as a structured 500 rather than a torn stream.
        faults.check("http.response")
        self.send_response(200)
        self.send_header("Content-Type", NDJSON_CONTENT_TYPE)
        self._send_trace_headers()
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        sent = 0
        for line in lines:
            data = (line + "\n").encode("utf-8")
            self.wfile.write(data)
            sent += len(data)
        self.wfile.flush()
        self._log_request(200, sent)

    # -- logging -------------------------------------------------------------
    def _log_request(self, status: int, body_bytes: int) -> None:
        self._status = status
        elapsed = time.perf_counter() - self._started
        obs.inc("http.requests", route=self._route_label, status=status)
        obs.observe(
            "http.latency_seconds", elapsed, route=self._route_label
        )
        entry: dict[str, Any] = {
            "ts": round(time.time(), 3),
            "request_id": self._request_id,
            "method": self.command,
            "path": self.path,
            "status": status,
            "ms": round(elapsed * 1e3, 2),
            "bytes": body_bytes,
        }
        context = getattr(self, "_trace_context", None)
        if context is not None:
            entry["trace_id"] = context.trace_id
        if self._note:
            entry["note"] = self._note
        logger.info("%s", json.dumps(entry, sort_keys=True))

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        # BaseHTTPRequestHandler's stderr chatter → the service logger
        # (DEBUG: _log_request already emits the structured line).
        logger.debug("%s - %s", self.address_string(), format % args)


class ExplorationServer(ThreadingHTTPServer):
    """The ``repro serve`` server: bind, then :meth:`serve_forever`.

    ``port=0`` binds an OS-assigned ephemeral port; read it back from
    :attr:`server_port`.  Usable as a context manager (``with`` closes
    the socket), and :meth:`start_background` runs it on a daemon
    thread for tests, examples and benchmarks.
    """

    daemon_threads = True

    def __init__(
        self,
        config: ServiceConfig | None = None,
        evaluate: Evaluate | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.state = ServiceState(self.config, evaluate=evaluate)
        super().__init__((self.config.host, self.config.port), _Handler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def server_close(self) -> None:
        # Stop the job dispatcher + shard pool with the listener; queued
        # jobs stay persisted and re-queue on the next start.  Also
        # disarms any fault plan this server installed.
        self.state.close()
        super().server_close()

    def start_background(self) -> threading.Thread:
        thread = threading.Thread(
            target=self.serve_forever, name="repro-serve", daemon=True
        )
        thread.start()
        return thread
