"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``optimize``        optimal working point for explicit parameters
``explore``         batch design-space exploration (scenario JSON or demo)
``serve``           HTTP/JSON exploration service (coalescing + tiered cache)
``jobs``            async sharded jobs on a service: submit / status /
                    result / cancel / list
``top``             live ops view of a running service (metrics + traces)
``cache``           inspect / clear / prune the on-disk result cache
``surrogate``       train / eval / inspect the learned surrogate bundle
``table``           regenerate a paper table (1-4; 1 also in native mode)
``figure``          regenerate a paper figure (1, 2 or 34)
``verify``          functionally verify generated multipliers
``export-verilog``  write structural Verilog for a generated multiplier
``characterize``    run the synthetic-SPICE extraction for a flavour
``list``            list the model catalog (``--json`` for all namespaces)

Commands touching the model catalog (``optimize``, ``explore``, ``list``,
``serve``) accept ``--packs PATH`` to load user plugin packs; packs named
by ``$REPRO_PACKS`` and found in ``./repro.d/`` load automatically.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from . import __version__, obs
from .core.architecture import ArchitectureParameters
from .core.closed_form import ptot_eq13_adaptive
from .core.optimum import approximation_error_percent
from .core.technology import flavour
from .solvers import available_solvers
from .study import Study
from .surrogate.model import BACKENDS
from .surrogate.train import DEFAULT_POWER_TOLERANCE


def _resolve_flavour(label: str):
    """Technology flavour lookup with CLI error semantics (None on failure)."""
    try:
        return flavour(label)
    except KeyError as error:
        # flavour()'s message already reads "unknown technology flavour ..."
        print(error.args[0], file=sys.stderr)
        return None


def _install_packs(args) -> bool:
    """Load any ``--packs`` plugin packs; False (after stderr) on failure."""
    from .catalog import PackError, install_packs

    try:
        install_packs(tuple(getattr(args, "packs", None) or ()))
    except PackError as error:
        print(str(error), file=sys.stderr)
        return False
    return True


#: ``repro optimize``'s explicit-architecture flags: (flag, args attribute,
#: default applied when building by hand).  ``--arch`` conflicts with all
#: of them — silently dropping any would yield a confidently wrong optimum.
_OPTIMIZE_ARCH_FLAGS = (
    ("--name", "name", "circuit"),
    ("--n-cells", "n_cells", None),
    ("--activity", "activity", None),
    ("--logical-depth", "logical_depth", None),
    ("--capacitance", "capacitance", 70e-15),
    ("--io-factor", "io_factor", 18.0),
    ("--zeta-factor", "zeta_factor", 0.2),
)


def _resolve_architecture(args):
    """The optimize command's architecture: ``--arch`` name or explicit fields."""
    if args.arch is not None:
        given = [
            flag
            for flag, attribute, _ in _OPTIMIZE_ARCH_FLAGS
            if getattr(args, attribute) is not None
        ]
        if given:
            print(
                f"--arch {args.arch!r} conflicts with {', '.join(given)}; "
                f"give a catalog name or explicit parameters, not both",
                file=sys.stderr,
            )
            return None
        from .catalog import CatalogKeyError, default_catalog

        try:
            return default_catalog().architectures.get(args.arch)
        except CatalogKeyError as error:
            print(str(error), file=sys.stderr)
            return None
    values = {
        attribute: (
            getattr(args, attribute)
            if getattr(args, attribute) is not None
            else default
        )
        for _, attribute, default in _OPTIMIZE_ARCH_FLAGS
    }
    missing = [
        flag
        for flag, attribute, default in _OPTIMIZE_ARCH_FLAGS
        if default is None and values[attribute] is None
    ]
    if missing:
        print(
            f"missing {', '.join(missing)} (or use --arch with a catalog "
            f"architecture name)",
            file=sys.stderr,
        )
        return None
    return ArchitectureParameters(**values)


def _start_profile(args) -> "obs.SpanTracer | None":
    """Arm telemetry for ``--profile``/``--profile-json``; None when off.

    Enables the metrics registry and installs a fresh span tracer as the
    process default, so spans from engine worker threads land in the
    same tree the CLI prints at the end.
    """
    if not (getattr(args, "profile", False) or getattr(args, "profile_json", None)):
        return None
    obs.enable()
    return obs.install_tracer(obs.SpanTracer(), default=True)


def _finish_profile(args, tracer, stats, total_seconds: float) -> None:
    """Print / write the profile collected since :func:`_start_profile`."""
    if tracer is None:
        return
    obs.uninstall_tracer()
    phases = dict(stats.phases) if stats is not None else {}
    if getattr(args, "profile", False):
        print()
        print("profile: span tree")
        print(obs.render_span_tree(tracer))
        print()
        print("profile: phase breakdown")
        print(obs.render_phases(phases, total_seconds=total_seconds))
    path = getattr(args, "profile_json", None)
    if path:
        import json as json_module

        payload = {
            "total_seconds": total_seconds,
            "phases": phases,
            "spans": tracer.to_dict(),
            "metrics": obs.snapshot(),
        }
        try:
            with open(path, "w", encoding="utf-8") as handle:
                json_module.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
        except OSError as error:
            print(f"cannot write profile: {error}", file=sys.stderr)
            return
        print(f"profile written to {path}")


def _cmd_optimize(args) -> int:
    import time

    if not _install_packs(args):
        return 2
    arch = _resolve_architecture(args)
    if arch is None:
        return 2
    tech = _resolve_flavour(args.tech)
    if tech is None:
        return 2
    tracer = _start_profile(args)
    started = time.perf_counter()
    resultset = (
        Study("cli-optimize")
        .architectures(arch)
        .technologies(tech)
        .frequencies(args.frequency)
        .solver(args.solver)
        .run()
    )
    total_seconds = time.perf_counter() - started
    record = resultset[0]
    print(arch.describe())
    print(tech.describe())
    if not record.feasible:
        print(f"infeasible: {record.reason}", file=sys.stderr)
        _finish_profile(args, tracer, resultset.stats, total_seconds)
        return 1
    print(
        f"{args.solver} optimum: Vdd={record.vdd:.3f} V, Vth={record.vth:.3f} V, "
        f"Pdyn={record.pdyn * 1e6:.2f} uW, Pstat={record.pstat * 1e6:.2f} uW, "
        f"Ptot={record.ptot * 1e6:.2f} uW"
    )
    eq13, fit = ptot_eq13_adaptive(arch, tech, args.frequency)
    print(
        f"Eq. 13: {eq13 * 1e6:.2f} uW "
        f"(error {approximation_error_percent(record.ptot, eq13):+.2f} %, "
        f"A/B fit on {fit.vdd_min:.2f}-{fit.vdd_max:.2f} V)"
    )
    _finish_profile(args, tracer, resultset.stats, total_seconds)
    return 0


#: How ``explore --method`` names map to solver-registry names (the CLI
#: keeps its historical vocabulary; ``closed-form`` has always meant the
#: vectorized batch kernel here).
_EXPLORE_METHOD_SOLVERS = {
    "auto": "auto",
    "closed-form": "vectorized",
    "numerical": "numerical",
}


def _export_table_npz(result, path: str) -> None:
    """Write a result set to ``path`` as a columnar ``.npz`` archive."""
    table = result._table
    if table is None:
        from .explore.columnar import ResultTable

        table = ResultTable.from_records(list(result.records))
    table.save_npz(path)


def _cmd_explore(args) -> int:
    from .explore.scenario import Scenario, demo_scenario

    if not _install_packs(args):
        return 2
    if args.scenario:
        try:
            with open(args.scenario, "r", encoding="utf-8") as handle:
                scenario = Scenario.from_json(handle.read())
        except OSError as error:
            print(f"cannot read scenario: {error}", file=sys.stderr)
            return 2
        except (KeyError, TypeError, ValueError) as error:
            print(
                f"invalid scenario file {args.scenario}: {error!r}",
                file=sys.stderr,
            )
            return 2
    else:
        scenario = demo_scenario(frequency_points=args.frequency_points)

    if args.jobs is not None and args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    if args.export and not args.export.endswith((".json", ".csv", ".npz")):
        # Checked before the sweep runs: a bad suffix must not cost a
        # (potentially minutes-long) evaluation.
        print(
            f"--export must end in .json, .csv or .npz, got {args.export!r}",
            file=sys.stderr,
        )
        return 2

    if args.save_scenario:
        try:
            with open(args.save_scenario, "w", encoding="utf-8") as handle:
                handle.write(scenario.to_json() + "\n")
        except OSError as error:
            print(f"cannot write scenario: {error}", file=sys.stderr)
            return 2
        print(f"wrote scenario {scenario.name!r} to {args.save_scenario}")

    if args.dry_run:
        print(scenario.describe())
        print(f"content hash: {scenario.content_hash()}")
        return 0

    import time

    study = (
        Study.from_scenario(scenario)
        .solver(_EXPLORE_METHOD_SOLVERS[args.method])
        .jobs(args.jobs)
        .cached(args.cache_dir, enabled=not args.no_cache)
    )
    tracer = _start_profile(args)
    started = time.perf_counter()
    result = study.run()
    total_seconds = time.perf_counter() - started
    print(result.describe())
    if not args.no_cache and result.cache_path is not None:
        state = "hit" if result.cache_hit else "stored"
        print(f"  cache {state}: {result.cache_path}")
    if args.export:
        # Serialised straight from the columnar result table — a
        # million-point sweep exports without materialising records.
        try:
            if args.export.endswith(".npz"):
                _export_table_npz(result, args.export)
            elif args.export.endswith(".csv"):
                with open(args.export, "w", encoding="utf-8") as handle:
                    handle.write(result.to_csv())
            else:
                with open(args.export, "w", encoding="utf-8") as handle:
                    handle.write(result.to_json() + "\n")
        except OSError as error:
            print(f"cannot write export: {error}", file=sys.stderr)
            return 2
        print(f"  exported {len(result)} records to {args.export}")
    print()
    print(result.table(top=args.top))
    _finish_profile(args, tracer, result.stats, total_seconds)
    return 0


def _cmd_table(args) -> int:
    if args.number == 1:
        if args.native:
            from .experiments.table1 import run_table1_native

            print(run_table1_native(n_vectors=args.vectors).render())
        else:
            from .experiments.table1 import run_table1_calibrated

            print(run_table1_calibrated().render())
    elif args.number == 2:
        from .experiments.table2 import run_table2

        print(run_table2().render())
    elif args.number == 3:
        from .experiments.wallace_family import run_table3

        print(run_table3().render())
    elif args.number == 4:
        from .experiments.wallace_family import run_table4

        print(run_table4().render())
    else:
        print(f"no table {args.number} in the paper", file=sys.stderr)
        return 2
    return 0


def _cmd_figure(args) -> int:
    if args.number == "1":
        from .experiments.figure1 import run_figure1

        print(run_figure1().render())
    elif args.number == "2":
        from .experiments.figure2 import run_figure2

        print(run_figure2().render())
    elif args.number in ("3", "4", "34"):
        from .experiments.figures3_4 import run_figures34

        print(run_figures34().render())
    else:
        print(f"no figure {args.number} in the paper", file=sys.stderr)
        return 2
    return 0


def _cmd_verify(args) -> int:
    from .generators.registry import MULTIPLIER_NAMES, build_multiplier
    from .netlist.verify import VerificationError, verify_multiplier

    names = MULTIPLIER_NAMES if args.name == "all" else [args.name]
    failures = 0
    for name in names:
        impl = build_multiplier(name)
        try:
            report = verify_multiplier(impl, n_vectors=args.vectors)
        except VerificationError as error:
            failures += 1
            print(f"FAIL {name}: {error}")
        else:
            print(f"OK   {report.describe()}")
    return 1 if failures else 0


def _cmd_export_verilog(args) -> int:
    from .generators.registry import build_multiplier
    from .netlist.verilog import export_design

    impl = build_multiplier(args.name)
    text = export_design(impl.netlist)
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {impl.netlist.n_cells}-cell design to {args.output}")
    return 0


def _cmd_characterize(args) -> int:
    from .characterization import device, fit_delay_coefficient, fit_device

    dev = device(args.flavour)
    fit = fit_device(dev)
    delay = fit_delay_coefficient(dev, fit)
    print(f"flavour {args.flavour.upper()} ({dev.name})")
    print(f"  Io    = {fit.io:.4e} A   (sub-threshold extrapolation at Vth)")
    print(f"  n     = {fit.n:.4f}")
    print(f"  alpha = {fit.alpha:.4f}")
    print(f"  Vth   = {fit.vth:.4f} V")
    print(f"  zeta  = {delay.zeta:.4e} F "
          f"(ring-oscillator fit, rel. RMS {delay.relative_rms_error:.3f})")
    return 0


def _cmd_list(args) -> int:
    import json as json_module

    from .listing import SECTION_NAMESPACES, catalog_payload, render_listing

    if not _install_packs(args):
        return 2
    if args.json:
        payload = catalog_payload()
        if args.what != "all":
            payload = payload[SECTION_NAMESPACES[args.what]]
        print(json_module.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(render_listing(args.what))
    return 0


def _cmd_serve(args) -> int:
    import logging

    from .service.server import ServiceConfig, ExplorationServer

    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    if not _install_packs(args):
        return 2
    try:
        config = ServiceConfig(
            host=args.host,
            port=args.port,
            workers=args.workers,
            max_body=args.max_body,
            cache_dir=args.cache_dir,
            cache_size=args.cache_size,
            use_cache=not args.no_cache,
            telemetry=not args.no_telemetry,
            jobs_dir=args.jobs_dir,
            trace_capacity=args.trace_capacity,
            slow_request_seconds=(
                args.slow_threshold if args.slow_threshold > 0 else None
            ),
            admission_queue=args.admission_queue,
            admission_points=args.admission_points,
            retry_after_seconds=args.retry_after,
            shard_retries=args.shard_retries,
            shard_timeout=(
                args.shard_timeout if args.shard_timeout > 0 else None
            ),
            faults=args.faults,
        )
        server = ExplorationServer(config)
    except (ValueError, OSError) as error:
        print(f"cannot start service: {error}", file=sys.stderr)
        return 2
    # port 0 binds an ephemeral port; print the resolved one.
    print(f"repro service v{__version__} listening on {server.url}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.server_close()
    return 0


def _load_jobs_scenario(args):
    """The ``jobs submit`` scenario: a JSON file or the demo sweep."""
    from .explore.scenario import Scenario, demo_scenario

    if args.scenario:
        try:
            with open(args.scenario, "r", encoding="utf-8") as handle:
                return Scenario.from_json(handle.read())
        except OSError as error:
            print(f"cannot read scenario: {error}", file=sys.stderr)
        except (KeyError, TypeError, ValueError) as error:
            print(
                f"invalid scenario file {args.scenario}: {error!r}",
                file=sys.stderr,
            )
        return None
    return demo_scenario(frequency_points=args.frequency_points)


def _print_job_trace(client, payload) -> bool:
    """``jobs submit --wait --profile``: render the server-side trace.

    The job payload carries the trace id captured at submit time; the
    job's spans flush to the trace store just after the terminal state
    lands, so poll briefly until the trace reports a job tree (or give
    up and render whatever the store has).
    """
    import time as time_module

    from .service.client import ServiceError

    trace_id = str(payload.get("trace_id") or "")
    if not trace_id:
        print(
            "no server-side trace for this job "
            "(the server may run with telemetry disabled)",
            file=sys.stderr,
        )
        return False
    trace = None
    for _ in range(20):
        try:
            trace = client.trace(trace_id)
        except ServiceError as error:
            if error.kind != "trace-not-found":
                print(
                    f"cannot fetch trace {trace_id}: {error}", file=sys.stderr
                )
                return False
        if trace is not None and trace.get("n_jobs", 0) > 0:
            break
        time_module.sleep(0.1)
    if trace is None:
        print(
            f"trace {trace_id} not in the server store (evicted?)",
            file=sys.stderr,
        )
        return False
    print()
    print("profile: server trace")
    print(obs.render_trace(trace))
    return True


def _cmd_jobs(args) -> int:
    import json as json_module

    from .jobs.manager import JobTimeout
    from .service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url, retries=args.retries)
    try:
        if args.jobs_action == "submit":
            scenario = _load_jobs_scenario(args)
            if scenario is None:
                return 2
            handle = client.submit(
                scenario, solver=args.solver, shards=args.shards
            )
            print(
                f"job {handle.id} submitted "
                f"({scenario.size} candidates, solver {args.solver})"
            )
            if not args.wait:
                print(f"poll with: repro jobs status {handle.id} --url {args.url}")
                return 0
            final = handle.wait(timeout=args.timeout, poll=args.poll)
            state = final.get("state")
            print(f"job {handle.id} {state} — progress {final.get('progress')}")
            if state != "done":
                if final.get("error"):
                    print(final["error"], file=sys.stderr)
                if args.profile:
                    _print_job_trace(client, final)
                return 1
            print(client.job_result(handle.id).describe())
            if args.profile:
                _print_job_trace(client, final)
            return 0
        if args.jobs_action == "status":
            payload = client.job(args.id)
            print(json_module.dumps(payload, indent=2, sort_keys=True))
            return 0
        if args.jobs_action == "result":
            result = client.job_result(args.id)
            print(result.describe())
            if args.export:
                if not args.export.endswith((".json", ".csv")):
                    print(
                        f"--export must end in .json or .csv, "
                        f"got {args.export!r}",
                        file=sys.stderr,
                    )
                    return 2
                rendered = (
                    result.to_csv()
                    if args.export.endswith(".csv")
                    else result.to_json() + "\n"
                )
                with open(args.export, "w", encoding="utf-8") as handle:
                    handle.write(rendered)
                print(f"exported {len(result)} records to {args.export}")
            else:
                print()
                print(result.table(top=args.top))
            return 0
        if args.jobs_action == "cancel":
            payload = client.cancel(args.id)
            print(f"job {args.id} {payload.get('state')}")
            return 0
        # list
        jobs = client.jobs()
        if not jobs:
            print("no jobs")
            return 0
        for payload in jobs:
            progress = payload.get("progress", {})
            print(
                f"{payload['id']}  {payload['state']:<9}  "
                f"{payload.get('scenario_name', ''):<24}  "
                f"shards {progress.get('shards_done', 0)}"
                f"/{progress.get('shards_total', 0)}  "
                f"points {progress.get('points_done', 0)}"
                f"/{progress.get('points_total', 0)}"
            )
        return 0
    except JobTimeout as error:
        print(str(error), file=sys.stderr)
        return 1
    except ServiceError as error:
        print(f"service error ({error.kind}): {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"cannot write export: {error}", file=sys.stderr)
        return 2


def _cmd_top(args) -> int:
    from .service.client import ServiceClient, ServiceError
    from .service.top import run_top

    client = ServiceClient(args.url, retries=args.retries)
    try:
        return run_top(
            client,
            interval=args.interval,
            iterations=1 if args.once else None,
            stream=sys.stdout,  # resolved per call, so capture works
            clear=not args.once,
        )
    except KeyboardInterrupt:
        return 0
    except ServiceError as error:
        print(f"service error ({error.kind}): {error}", file=sys.stderr)
        return 1


def _cmd_cache(args) -> int:
    import json as json_module

    from .service.memcache import as_cache

    # The tiered view: disk entry counts/sizes plus the process-global
    # memory tier's hit/miss/eviction counters.
    cache = as_cache(args.cache_dir)
    if args.action == "stats":
        print(json_module.dumps(cache.stats(), indent=2, sort_keys=True))
    elif args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} entries from {cache.directory}")
    elif args.action == "prune":
        if args.max_entries is None or args.max_entries < 0:
            print(
                "prune requires --max-entries >= 0", file=sys.stderr
            )
            return 2
        removed = cache.prune(args.max_entries)
        print(
            f"pruned {removed} entries from {cache.directory} "
            f"(keeping the {args.max_entries} newest)"
        )
    return 0


def _surrogate_spec(args):
    from .surrogate import DatasetSpec

    return DatasetSpec(
        seed=args.seed,
        architectures=args.architectures,
        technologies=args.technologies,
        frequencies=args.frequency_points,
    )


def _cmd_surrogate(args) -> int:
    import json as json_module

    from .solvers.base import SolverError
    from .surrogate import (
        SurrogateBundle,
        default_bundle_path,
        evaluate_bundle,
        train_bundle,
    )

    if args.surrogate_action == "train":
        spec = _surrogate_spec(args)
        if args.power_tolerance <= 0.0:
            print("--power-tolerance must be > 0", file=sys.stderr)
            return 2
        try:
            trained = train_bundle(
                spec,
                degree=args.degree,
                ridge_lambda=args.ridge_lambda,
                backend=args.backend,
                power_tolerance=args.power_tolerance,
                use_dataset_cache=not args.no_dataset_cache,
            )
        except (RuntimeError, ValueError) as error:
            print(f"training failed: {error}", file=sys.stderr)
            return 2
        out = Path(args.out) if args.out else default_bundle_path()
        try:
            trained.bundle.save(out)
        except OSError as error:
            print(f"cannot write bundle: {error}", file=sys.stderr)
            return 2
        if args.json:
            print(json_module.dumps(trained.bundle.card, indent=2,
                                    sort_keys=True))
        else:
            source = "cache" if trained.dataset_from_cache else "fresh build"
            print(f"dataset: {source} ({trained.dataset.key[:12]}…)")
            print(trained.bundle.describe())
        print(f"wrote bundle to {out}")
        return 0

    path = Path(args.bundle) if args.bundle else default_bundle_path()
    try:
        bundle = SurrogateBundle.load(path)
    except FileNotFoundError:
        print(
            f"no bundle at {path}; train one first with "
            f"'repro surrogate train'",
            file=sys.stderr,
        )
        return 2
    except (OSError, KeyError, ValueError, SolverError) as error:
        print(f"cannot load bundle {path}: {error}", file=sys.stderr)
        return 2

    if args.surrogate_action == "info":
        if args.json:
            print(json_module.dumps(bundle.card, indent=2, sort_keys=True))
        else:
            print(bundle.describe())
        return 0

    # eval: score on a held-out dataset (default: training seed + 1).
    spec = None
    if args.seed is not None:
        from .surrogate import DatasetSpec

        trained_spec = DatasetSpec.from_dict(bundle.card["dataset"]["spec"])
        spec = DatasetSpec.from_dict(
            {**trained_spec.to_dict(), "seed": args.seed}
        )
    report = evaluate_bundle(bundle, spec)
    if args.json:
        print(json_module.dumps(report, indent=2, sort_keys=True))
    else:
        errors = report["errors_trusted"]
        print(
            f"evaluated {report['points']} points "
            f"(seed {report['dataset']['spec']['seed']}): "
            f"{report['trusted']} trusted, {report['flagged']} flagged "
            f"(trusted fraction {report['trusted_fraction']:.3f})"
        )
        print("relative error on trusted points:")
        for output in ("vdd", "vth", "ptot"):
            q = errors[output]
            print(
                f"  {output:>6s}: q50={q['q50']:.2e} q90={q['q90']:.2e} "
                f"q99={q['q99']:.2e} max={q['max']:.2e}"
            )
    return 0


def _add_profile_flags(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--profile", action="store_true",
        help="print a span tree and per-phase breakdown after the run",
    )
    command.add_argument(
        "--profile-json", default=None, metavar="PATH", dest="profile_json",
        help="write the profile (spans, phases, metrics) as JSON to PATH",
    )


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for testing and documentation)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Schuster et al., DATE 2006",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    # Shared by every catalog-touching command: load user plugin packs
    # (JSON/TOML) on top of $REPRO_PACKS and ./repro.d/ discovery.
    packs_parent = argparse.ArgumentParser(add_help=False)
    packs_parent.add_argument(
        "--packs", action="append", default=None, metavar="PATH",
        help="plugin pack file or directory to load (repeatable); "
             "$REPRO_PACKS and ./repro.d/ are always scanned",
    )

    optimize = commands.add_parser(
        "optimize",
        parents=[packs_parent],
        help="optimal working point for explicit or catalog parameters",
    )
    # The explicit-architecture flags default to None so --arch can
    # detect (and reject) any of them; _resolve_architecture applies
    # the historical defaults (name=circuit, C=70 fF, io=18, zeta=0.2).
    optimize.add_argument("--name", default=None)
    optimize.add_argument(
        "--arch", default=None,
        help="catalog architecture name (alternative to the explicit "
             "--n-cells/--activity/--logical-depth parameters)",
    )
    optimize.add_argument("--n-cells", type=float, default=None, dest="n_cells")
    optimize.add_argument("--activity", type=float, default=None)
    optimize.add_argument(
        "--logical-depth", type=float, default=None, dest="logical_depth"
    )
    optimize.add_argument(
        "--capacitance", type=float, default=None,
        help="per-cell equivalent capacitance [F] (default 70e-15)",
    )
    optimize.add_argument("--io-factor", type=float, default=None, dest="io_factor")
    optimize.add_argument(
        "--zeta-factor", type=float, default=None, dest="zeta_factor"
    )
    optimize.add_argument(
        "--tech", default="LL",
        help="catalog technology name or alias (LL, HS, ULL, or any "
             "registered/pack-defined technology)",
    )
    optimize.add_argument("--frequency", type=float, default=31.25e6)
    optimize.add_argument(
        "--solver", default="numerical", choices=list(available_solvers()),
        help="solve path from the solver registry (default: numerical)",
    )
    _add_profile_flags(optimize)
    optimize.set_defaults(handler=_cmd_optimize)

    explore = commands.add_parser(
        "explore",
        parents=[packs_parent],
        help="batch design-space exploration over a scenario",
    )
    explore.add_argument(
        "scenario", nargs="?", default=None,
        help="scenario JSON file; omit to run the built-in demo sweep",
    )
    explore.add_argument(
        "--method", default="auto", choices=["auto", "closed-form", "numerical"],
        help="auto = vectorized Eq. 13 with exact-numerical fallback",
    )
    explore.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for exact-numerical points (default: CPUs)",
    )
    explore.add_argument(
        "--top", type=int, default=15, help="ranking rows to print"
    )
    explore.add_argument(
        "--cache-dir", default=None,
        help="result cache directory (default: ~/.cache/repro/explore)",
    )
    explore.add_argument(
        "--no-cache", action="store_true", help="bypass the result cache"
    )
    explore.add_argument(
        "--frequency-points", type=int, default=42, dest="frequency_points",
        help="frequency grid size of the demo scenario",
    )
    explore.add_argument(
        "--save-scenario", default=None,
        help="write the (demo or loaded) scenario JSON to this path",
    )
    explore.add_argument(
        "--export", default=None, metavar="PATH",
        help="write the full result set to PATH (.json, .csv or .npz)",
    )
    explore.add_argument(
        "--dry-run", action="store_true",
        help="print the candidate count and content hash without evaluating",
    )
    _add_profile_flags(explore)
    explore.set_defaults(handler=_cmd_explore)

    table = commands.add_parser("table", help="regenerate a paper table")
    table.add_argument("number", type=int, choices=[1, 2, 3, 4])
    table.add_argument("--native", action="store_true",
                       help="table 1 from generated netlists (no paper inputs)")
    table.add_argument("--vectors", type=int, default=120)
    table.set_defaults(handler=_cmd_table)

    figure = commands.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("number", choices=["1", "2", "3", "4", "34"])
    figure.set_defaults(handler=_cmd_figure)

    verify = commands.add_parser("verify", help="verify generated multipliers")
    verify.add_argument("name", nargs="?", default="all")
    verify.add_argument("--vectors", type=int, default=30)
    verify.set_defaults(handler=_cmd_verify)

    export = commands.add_parser(
        "export-verilog", help="write structural Verilog for a multiplier"
    )
    export.add_argument("name")
    export.add_argument("-o", "--output", default="-")
    export.set_defaults(handler=_cmd_export_verilog)

    characterize = commands.add_parser(
        "characterize", help="synthetic-SPICE extraction for a flavour"
    )
    characterize.add_argument("flavour", choices=["LL", "HS", "ULL"])
    characterize.set_defaults(handler=_cmd_characterize)

    lister = commands.add_parser(
        "list",
        parents=[packs_parent],
        help="list the model catalog: architectures, solvers, transforms, "
             "technologies and parameter summaries",
    )
    lister.add_argument(
        "what", nargs="?", default="all",
        choices=[
            "all", "architectures", "solvers", "transforms",
            "technologies", "parameters",
        ],
    )
    lister.add_argument(
        "--json", action="store_true",
        help="emit the full catalog (all five namespaces, with "
             "provenance) as JSON",
    )
    lister.set_defaults(handler=_cmd_list)

    serve = commands.add_parser(
        "serve",
        parents=[packs_parent],
        help="HTTP/JSON exploration service over the Study surface",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8731,
        help="TCP port (0 binds an OS-assigned ephemeral port)",
    )
    serve.add_argument(
        "--workers", type=int, default=4,
        help="max concurrent engine evaluations",
    )
    serve.add_argument(
        "--max-body", type=int, default=1 << 20, dest="max_body",
        help="largest accepted request body [bytes]",
    )
    serve.add_argument(
        "--cache-size", type=int, default=64, dest="cache_size",
        help="in-memory result cache entries (LRU bound)",
    )
    serve.add_argument(
        "--cache-dir", default=None,
        help="disk cache tier directory (default: ~/.cache/repro/explore)",
    )
    serve.add_argument(
        "--no-cache", action="store_true",
        help="serve without either cache tier (coalescing still applies)",
    )
    serve.add_argument(
        "--no-telemetry", action="store_true", dest="no_telemetry",
        help="disable the metrics registry (/v1/metrics serves empty)",
    )
    serve.add_argument(
        "--jobs-dir", default=None, dest="jobs_dir",
        help="job store directory (default: <cache-dir>/jobs, or "
             "~/.cache/repro/jobs without a cache dir)",
    )
    serve.add_argument(
        "--trace-capacity", type=int, default=obs.DEFAULT_TRACE_CAPACITY,
        dest="trace_capacity",
        help="in-memory trace store size in whole traces "
             f"(default {obs.DEFAULT_TRACE_CAPACITY})",
    )
    serve.add_argument(
        "--slow-threshold", type=float, default=1.0, dest="slow_threshold",
        help="emit a structured slow_request log line for requests "
             "slower than this many seconds (0 disables; default 1.0)",
    )
    serve.add_argument(
        "--admission-queue", type=int, default=16, dest="admission_queue",
        help="requests allowed to wait for a worker beyond the pool "
             "(excess sheds 429 with Retry-After; default 16)",
    )
    serve.add_argument(
        "--admission-points", type=int, default=None, dest="admission_points",
        help="total sweep points admitted concurrently before cost "
             "shedding (503); default: unlimited",
    )
    serve.add_argument(
        "--retry-after", type=float, default=1.0, dest="retry_after",
        help="Retry-After seconds advertised on shed responses "
             "(default 1.0)",
    )
    serve.add_argument(
        "--shard-retries", type=int, default=1, dest="shard_retries",
        help="per-shard retry budget before a job shard is declared "
             "poisoned (default 1)",
    )
    serve.add_argument(
        "--shard-timeout", type=float, default=0.0, dest="shard_timeout",
        help="watchdog seconds before a silent job shard is re-queued "
             "(0 disables; default 0)",
    )
    serve.add_argument(
        "--faults", default=None,
        help="arm deterministic fault injection, e.g. "
             "'seed=7; cache.read:p=0.5:corrupt; shard.run:n=2' "
             "(also via REPRO_FAULTS; testing only)",
    )
    serve.add_argument(
        "-v", "--verbose", action="store_true", help="debug-level logging"
    )
    serve.set_defaults(handler=_cmd_serve)

    jobs_cmd = commands.add_parser(
        "jobs",
        help="async sharded exploration jobs on a running service",
    )
    jobs_sub = jobs_cmd.add_subparsers(dest="jobs_action", required=True)
    url_parent = argparse.ArgumentParser(add_help=False)
    url_parent.add_argument(
        "--url", default="http://127.0.0.1:8731",
        help="base URL of the repro service (default: the serve default)",
    )
    url_parent.add_argument(
        "--retries", type=int, default=2,
        help="client retries on connection errors / 503s (default 2)",
    )

    jobs_submit = jobs_sub.add_parser(
        "submit", parents=[url_parent],
        help="POST a scenario as an async job (demo sweep when omitted)",
    )
    jobs_submit.add_argument(
        "scenario", nargs="?", default=None,
        help="scenario JSON file; omit to submit the built-in demo sweep",
    )
    jobs_submit.add_argument(
        "--solver", default="auto",
        help="solver registry name forwarded to the job (default auto)",
    )
    jobs_submit.add_argument(
        "--shards", type=int, default=None,
        help="shard count (default: up to 8, clamped to the sweep axes)",
    )
    jobs_submit.add_argument(
        "--frequency-points", type=int, default=42, dest="frequency_points",
        help="frequency grid size of the demo scenario",
    )
    jobs_submit.add_argument(
        "--wait", action="store_true",
        help="poll until the job finishes and print the result summary",
    )
    jobs_submit.add_argument(
        "--timeout", type=float, default=600.0,
        help="--wait gives up after this many seconds",
    )
    jobs_submit.add_argument(
        "--poll", type=float, default=0.5,
        help="--wait polling interval [s]",
    )
    jobs_submit.add_argument(
        "--profile", action="store_true",
        help="with --wait: render the server-side distributed trace "
             "(request + job + shard spans) after the job finishes",
    )
    jobs_submit.set_defaults(handler=_cmd_jobs)

    jobs_status = jobs_sub.add_parser(
        "status", parents=[url_parent], help="print one job's status JSON"
    )
    jobs_status.add_argument("id", help="job id")
    jobs_status.set_defaults(handler=_cmd_jobs)

    jobs_result = jobs_sub.add_parser(
        "result", parents=[url_parent],
        help="fetch a finished job's merged result",
    )
    jobs_result.add_argument("id", help="job id")
    jobs_result.add_argument(
        "--export", default=None, metavar="PATH",
        help="write the full result set to PATH (.json or .csv)",
    )
    jobs_result.add_argument(
        "--top", type=int, default=15, help="ranking rows to print"
    )
    jobs_result.set_defaults(handler=_cmd_jobs)

    jobs_cancel = jobs_sub.add_parser(
        "cancel", parents=[url_parent], help="cancel a queued or running job"
    )
    jobs_cancel.add_argument("id", help="job id")
    jobs_cancel.set_defaults(handler=_cmd_jobs)

    jobs_list = jobs_sub.add_parser(
        "list", parents=[url_parent], help="list all jobs, newest first"
    )
    jobs_list.set_defaults(handler=_cmd_jobs)

    top = commands.add_parser(
        "top",
        parents=[url_parent],
        help="live ops view of a running service: RPS, per-route "
             "latency, cache hit rates, queue depth, recent traces",
    )
    top.add_argument(
        "--interval", type=float, default=2.0,
        help="refresh interval [s] (default 2.0)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="render one snapshot and exit (no screen clearing)",
    )
    top.set_defaults(handler=_cmd_top)

    cache = commands.add_parser(
        "cache", help="inspect / clear / prune the on-disk result cache"
    )
    cache.add_argument("action", choices=["stats", "clear", "prune"])
    cache.add_argument(
        "--cache-dir", default=None,
        help="cache directory (default: ~/.cache/repro/explore)",
    )
    cache.add_argument(
        "--max-entries", type=int, default=None, dest="max_entries",
        help="prune: how many newest entries to keep",
    )
    cache.set_defaults(handler=_cmd_cache)

    surrogate_cmd = commands.add_parser(
        "surrogate",
        help="train / eval / inspect the learned (Vdd*, Vth*, P*) surrogate",
    )
    surrogate_sub = surrogate_cmd.add_subparsers(
        dest="surrogate_action", required=True
    )

    surrogate_train = surrogate_sub.add_parser(
        "train",
        help="build the training dataset (exact solver), fit, calibrate "
             "the uncertainty gate and persist the bundle",
    )
    surrogate_train.add_argument(
        "--out", default=None, metavar="PATH",
        help="bundle output path (default: $REPRO_SURROGATE_BUNDLE or "
             "~/.cache/repro/surrogate/default.npz)",
    )
    surrogate_train.add_argument(
        "--seed", type=int, default=0,
        help="dataset rng seed — fixes sampling and the train/val split, "
             "so retraining is bit-reproducible (default 0)",
    )
    surrogate_train.add_argument(
        "--architectures", type=int, default=24,
        help="sampled architecture variants (default 24)",
    )
    surrogate_train.add_argument(
        "--technologies", type=int, default=12,
        help="sampled technology flavours (default 12)",
    )
    surrogate_train.add_argument(
        "--frequency-points", type=int, default=28, dest="frequency_points",
        help="log-spaced frequency grid size (default 28)",
    )
    surrogate_train.add_argument(
        "--degree", type=int, default=6,
        help="polynomial total degree (default 6)",
    )
    surrogate_train.add_argument(
        "--ridge-lambda", type=float, default=1e-9, dest="ridge_lambda",
        help="per-sample ridge penalty (default 1e-9)",
    )
    surrogate_train.add_argument(
        "--backend", default="numpy", choices=list(BACKENDS),
        help="fitter backend; sklearn needs scikit-learn installed and "
             "produces an identical bundle (default numpy)",
    )
    surrogate_train.add_argument(
        "--power-tolerance", type=float, dest="power_tolerance",
        default=DEFAULT_POWER_TOLERANCE,
        help="max relative power error the calibrated gate may admit on "
             f"held-out points (default {DEFAULT_POWER_TOLERANCE})",
    )
    surrogate_train.add_argument(
        "--no-dataset-cache", action="store_true", dest="no_dataset_cache",
        help="rebuild the training dataset even when cached",
    )
    surrogate_train.add_argument(
        "--json", action="store_true",
        help="print the model card as JSON instead of the summary",
    )
    surrogate_train.set_defaults(handler=_cmd_surrogate)

    surrogate_eval = surrogate_sub.add_parser(
        "eval",
        help="score a bundle on a fresh held-out dataset",
    )
    surrogate_eval.add_argument(
        "--bundle", default=None, metavar="PATH",
        help="bundle to score (default: the default bundle path)",
    )
    surrogate_eval.add_argument(
        "--seed", type=int, default=None,
        help="evaluation dataset seed (default: training seed + 1)",
    )
    surrogate_eval.add_argument(
        "--json", action="store_true",
        help="print the evaluation report as JSON",
    )
    surrogate_eval.set_defaults(handler=_cmd_surrogate)

    surrogate_info = surrogate_sub.add_parser(
        "info",
        help="render a persisted bundle's model card",
    )
    surrogate_info.add_argument(
        "--bundle", default=None, metavar="PATH",
        help="bundle to describe (default: the default bundle path)",
    )
    surrogate_info.add_argument(
        "--json", action="store_true",
        help="print the raw model card JSON",
    )
    surrogate_info.set_defaults(handler=_cmd_surrogate)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    from .catalog import PackError

    try:
        # Building the parser reads the solver registry, which may load
        # $REPRO_PACKS / repro.d/ packs — surface a broken pack as a
        # clean exit 2 instead of a traceback.
        parser = build_parser()
    except PackError as error:
        print(str(error), file=sys.stderr)
        return 2
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
