"""The :class:`Study` facade — one entry point for every power question.

The paper's methodology is a single question asked many ways: *which
(architecture, technology, Vdd, Vth) minimises total power at frequency
f?*  ``Study`` is the one public door to all of them.  A fluent builder
compiles to an explore :class:`~repro.explore.scenario.Scenario` under
the hood, dispatches through the :mod:`repro.solvers` registry (the
``"auto"`` default rides the vectorized kernel with exact-numerical
fallback), and every run returns one typed :class:`ResultSet` of uniform
records — no more juggling ``OptimizationResult`` here, ``Candidate``
there and engine outcomes elsewhere.

Quick start::

    from repro import Study

    answer = (
        Study("which-flavour")
        .architectures(wallace)
        .technologies("ULL", "LL", "HS")
        .frequencies(31.25e6)
        .solver("auto")
        .run()
    )
    print(answer.best().describe())
    print(answer.table(top=5))

Scaling up is the same code: add ``.frequency_range(...)``,
``.transforms(...)`` and ``.cached()`` and the identical pipeline sweeps
thousands of candidates through the batch kernel with content-hash
result caching.
"""

from __future__ import annotations

import csv
import io
import json
import threading
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping, Sequence

from . import obs
from .core.architecture import ArchitectureParameters
from .core.technology import Technology, flavour
from .explore.analysis import (
    DEFAULT_OBJECTIVES,
    pareto_frontier,
    rank_points,
    report,
)
from .explore.cache import CACHE_SCHEMA_VERSION, ResultCache, content_hash
from .explore.columnar import ResultRows, ResultTable
from .service.memcache import TieredCache, as_cache
from .explore.engine import EvaluationStats, PointResult, cache_key_payload
from .explore.engine import explore as explore_scenario
from .explore.scenario import FrequencyGrid, Scenario, TransformStep
from .solvers import EngineSolver, Solver, get_solver

__all__ = ["Record", "ResultSet", "Study"]

#: The uniform record type every Study run yields: one flat, JSON-ready
#: row per candidate with architecture / technology / frequency / Vdd /
#: Vth / Pdyn / Pstat / Ptot / feasibility / method / reason.
Record = PointResult


@dataclass(frozen=True)
class ResultSet:
    """Evaluated candidates plus provenance, with analysis built in.

    The record list is aligned with ``scenario.expand()`` order.  For
    engine-backed runs it is a lazy :class:`~repro.explore.columnar.
    ResultRows` view over the columnar ``ResultTable`` — list-compatible
    (indexing, iteration, equality) but materialising a ``Record`` only
    where one is actually read, while serialisation and the analysis
    fast paths use the backing column arrays directly.  All derived
    views (:meth:`feasible`, :meth:`rank`, :meth:`pareto`) return new
    ``ResultSet`` instances over a plain-list subset of the records, so
    the analysis methods compose: ``study.run().pareto().table()``.
    """

    records: Sequence[Record]
    solver: str
    scenario: Scenario | None = None
    stats: EvaluationStats | None = None
    cache_hit: bool = False
    cache_key: str = ""
    cache_path: Path | None = None
    #: True when the set covers only the shards of a job that survived
    #: (some shards were poisoned); rows present are still exact.
    partial: bool = False

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self.records)

    def __getitem__(self, index: int) -> Record:
        return self.records[index]

    def _subset(self, records: Sequence[Record]) -> "ResultSet":
        return replace(self, records=list(records))

    @property
    def _table(self) -> "ResultTable | None":
        """The columnar table behind the records, if they are a lazy view."""
        records = self.records
        return records.table if isinstance(records, ResultRows) else None

    # -- analysis -----------------------------------------------------------
    @property
    def n_feasible(self) -> int:
        table = self._table
        if table is not None:
            return table.n_feasible
        return sum(1 for record in self.records if record.feasible)

    def feasible(self) -> "ResultSet":
        """Only the candidates that close timing."""
        return self._subset([r for r in self.records if r.feasible])

    def infeasible(self) -> "ResultSet":
        """Only the candidates that cannot close timing (with reasons)."""
        return self._subset([r for r in self.records if not r.feasible])

    def filter(self, predicate: Callable[[Record], bool]) -> "ResultSet":
        """Records satisfying an arbitrary predicate."""
        return self._subset([r for r in self.records if predicate(r)])

    def best(self) -> Record | None:
        """Cheapest feasible candidate, or None when nothing is feasible."""
        table = self._table
        if table is not None:
            index = table.best_index()
            return None if index is None else table.row(index)
        candidates = [r for r in self.records if r.feasible]
        if not candidates:
            return None
        return min(candidates, key=lambda r: r.ptot_or_inf)

    def rank(self, key: Callable[[Record], float] | None = None) -> "ResultSet":
        """Candidates sorted cheapest-first; infeasible ones last."""
        return self._subset(rank_points(self.records, key=key))

    def pareto(
        self,
        objectives: Sequence[tuple[str, str]] = DEFAULT_OBJECTIVES,
    ) -> "ResultSet":
        """The non-dominated feasible candidates, cheapest-first.

        Default objectives: optimal power ↓, frequency ↑, area proxy ↓ —
        the same frontier PR 1's explore reports mark.
        """
        return self._subset(pareto_frontier(self.records, objectives))

    # -- serialisation ------------------------------------------------------
    def to_dicts(self) -> list[dict[str, Any]]:
        """One plain dict per record (JSON-ready).

        Table-backed result sets serialise column-wise (zip sixteen
        lists once) instead of materialising and introspecting every
        record object.
        """
        table = self._table
        if table is not None:
            return table.to_dicts()
        return [record.to_dict() for record in self.records]

    def to_json(self, indent: int | None = 2) -> str:
        """The whole result set — records plus provenance — as JSON."""
        payload: dict[str, Any] = {
            "solver": self.solver,
            "records": self.to_dicts(),
        }
        if self.scenario is not None:
            payload["scenario"] = self.scenario.to_dict()
        if self.stats is not None:
            payload["stats"] = self.stats.to_dict()
        return json.dumps(payload, indent=indent, sort_keys=True)

    def to_csv(self) -> str:
        """The records as CSV (header + one row per candidate)."""
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=list(Record._FIELD_NAMES))
        writer.writeheader()
        writer.writerows(self.to_dicts())
        return buffer.getvalue()

    def table(
        self,
        top: int = 15,
        objectives: Sequence[tuple[str, str]] = DEFAULT_OBJECTIVES,
    ) -> str:
        """Fixed-width ranking table with Pareto marks (explore's report)."""
        return report(self.records, top=top, objectives=objectives)

    def describe(self) -> str:
        """Provenance + stats + winner, one line each."""
        name = self.scenario.name if self.scenario is not None else "ad hoc"
        source = "cache hit" if self.cache_hit else "evaluated"
        lines = [f"scenario {name!r} [{self.solver}] — {source}"]
        if self.stats is not None:
            lines.append(f"  {self.stats.describe()}")
        best = self.best()
        if best is not None:
            lines.append(f"  best: {best.describe()}")
        return "\n".join(lines)


#: Process-global manager backing ``Study.submit()`` when the caller
#: does not pass one (shared queue, shared pool — same idea as the
#: process-global memory cache tier).
_JOB_MANAGER = None
_JOB_MANAGER_LOCK = threading.Lock()


def _default_job_manager():
    global _JOB_MANAGER
    with _JOB_MANAGER_LOCK:
        if _JOB_MANAGER is None:
            from .jobs.manager import JobManager

            _JOB_MANAGER = JobManager()
        return _JOB_MANAGER


def _as_architecture(spec: Any) -> ArchitectureParameters:
    if isinstance(spec, ArchitectureParameters):
        return spec
    if isinstance(spec, str):
        from .catalog import default_catalog

        return default_catalog().architectures.get(spec)
    if isinstance(spec, Mapping):
        return ArchitectureParameters(**spec)
    raise TypeError(
        f"expected ArchitectureParameters, a catalog name or a field "
        f"mapping, got {spec!r}"
    )


def _as_technology(spec: Any) -> Technology:
    if isinstance(spec, Technology):
        return spec
    if isinstance(spec, str):
        return flavour(spec)
    raise TypeError(
        f"expected Technology or a catalog name ('LL', 'HS', 'ULL', or "
        f"any registered technology), got {spec!r}"
    )


def _as_chain(spec: Any) -> tuple[TransformStep, ...]:
    if isinstance(spec, TransformStep):
        return (spec,)
    return tuple(spec)


class Study:
    """Fluent builder for power-optimisation studies.

    Every configuration method mutates the builder and returns ``self``
    so calls chain; :meth:`run` compiles the builder to a
    :class:`Scenario`, dispatches it through the named solver, and
    returns a :class:`ResultSet`.  A ``Study`` can be re-run (e.g. with
    a different solver) — :meth:`solver` and friends may be called
    between runs.
    """

    def __init__(self, name: str = "study") -> None:
        self._name = name
        self._description = ""
        self._architectures: list[ArchitectureParameters] = []
        self._technologies: list[Technology] = []
        self._frequencies: FrequencyGrid | None = None
        self._transform_chains: list[tuple[TransformStep, ...]] = []
        self._solver: str | Solver = "auto"
        self._solver_options: dict[str, Any] = {}
        self._jobs: int | None = None
        self._use_cache = False
        self._cache: TieredCache | ResultCache | str | Path | None = None
        self._scenario: Scenario | None = None

    # -- problem definition -------------------------------------------------
    @classmethod
    def from_scenario(cls, scenario: Scenario) -> "Study":
        """Wrap an existing explore scenario (e.g. loaded from JSON).

        A wrapped scenario is taken as-is: the problem-definition
        builder methods (``architectures`` … ``described_as``) raise on
        such a study instead of silently discarding or ignoring parts of
        it — edit the :class:`Scenario` (``dataclasses.replace``) and
        re-wrap to change the problem.  Execution policy
        (:meth:`solver`, :meth:`jobs`, :meth:`cached`) stays
        configurable.
        """
        study = cls(scenario.name)
        study._scenario = scenario
        return study

    def _require_builder(self, method: str) -> None:
        if self._scenario is not None:
            raise ValueError(
                f"study {self._name!r} wraps an existing Scenario; "
                f".{method}(...) would silently conflict with it — edit "
                f"the Scenario (dataclasses.replace) and re-wrap instead"
            )

    def described_as(self, description: str) -> "Study":
        """Attach a human-readable description to the compiled scenario."""
        self._require_builder("described_as")
        self._description = description
        return self

    def architectures(self, *specs) -> "Study":
        """Add candidate architectures.

        Each spec is an :class:`ArchitectureParameters`, a field
        mapping, or a bare catalog name (builtin demo entries and
        pack-defined architectures alike).
        """
        self._require_builder("architectures")
        self._architectures.extend(_as_architecture(spec) for spec in specs)
        return self

    def technologies(self, *specs) -> "Study":
        """Add candidate technologies (objects or catalog names/aliases)."""
        self._require_builder("technologies")
        self._technologies.extend(_as_technology(spec) for spec in specs)
        return self

    def frequencies(self, *values) -> "Study":
        """Set the frequency grid: floats [Hz] or one :class:`FrequencyGrid`."""
        self._require_builder("frequencies")
        if len(values) == 1 and isinstance(values[0], FrequencyGrid):
            self._frequencies = values[0]
        else:
            self._frequencies = FrequencyGrid(
                tuple(float(value) for value in values)
            )
        return self

    def frequency_range(
        self, start: float, stop: float, points: int, spacing: str = "log"
    ) -> "Study":
        """Set a ``points``-long log or linear frequency grid [Hz]."""
        self._require_builder("frequency_range")
        if spacing not in ("log", "linear"):
            raise ValueError(f"spacing must be 'log' or 'linear', got {spacing!r}")
        maker = (
            FrequencyGrid.logspace if spacing == "log" else FrequencyGrid.linear
        )
        self._frequencies = maker(start, stop, points)
        return self

    def transforms(self, *chains) -> "Study":
        """Add Section 4 transform chains applied to every architecture.

        Each chain is a :class:`TransformStep` or a sequence of them; the
        identity chain ``()`` is always evaluated unless you pass only
        non-empty chains and want it gone — include ``()`` explicitly to
        keep the untransformed bases in the sweep.
        """
        self._require_builder("transforms")
        self._transform_chains.extend(_as_chain(chain) for chain in chains)
        return self

    # -- execution policy ---------------------------------------------------
    def solver(self, name: str | Solver, **options) -> "Study":
        """Pick the solve path by registry name (default ``"auto"``).

        ``options`` are forwarded to the solver on every run, e.g.
        ``.solver("bounded", vth_max=0.45)``.
        """
        get_solver(name)  # fail fast on typos, at build time
        self._solver = name
        self._solver_options = dict(options)
        return self

    def jobs(self, jobs: int | None) -> "Study":
        """Worker processes for exact-numerical points (None = all CPUs)."""
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self._jobs = jobs
        return self

    def cached(
        self,
        cache: TieredCache | ResultCache | str | Path | None = None,
        enabled: bool = True,
    ) -> "Study":
        """Read/write the tiered content-hash result cache on :meth:`run`.

        ``cache`` is a :class:`~repro.service.memcache.TieredCache`, a
        :class:`ResultCache`, a directory, or None for the default
        location (``$REPRO_EXPLORE_CACHE`` or ``~/.cache/repro/explore``);
        anything but a ready-made tiered cache gains the process-global
        in-memory LRU tier in front of the disk entries.
        """
        self._use_cache = enabled
        self._cache = cache
        return self

    # -- compilation + execution --------------------------------------------
    def scenario(self) -> Scenario:
        """Compile the builder to the explore scenario it will run."""
        if self._scenario is not None:
            return self._scenario
        if not self._architectures:
            raise ValueError(f"study {self._name!r} has no architectures")
        if not self._technologies:
            raise ValueError(f"study {self._name!r} has no technologies")
        if self._frequencies is None:
            raise ValueError(
                f"study {self._name!r} has no frequencies; call "
                f".frequencies(...) or .frequency_range(...)"
            )
        chains = tuple(self._transform_chains) or ((),)
        return Scenario(
            name=self._name,
            description=self._description,
            architectures=tuple(self._architectures),
            technologies=tuple(self._technologies),
            frequencies=self._frequencies,
            transform_chains=chains,
        )

    @property
    def solver_name(self) -> str:
        solver = self._solver
        return solver if isinstance(solver, str) else solver.name

    def _cache_key(self, scenario: Scenario) -> str:
        # The engine's shared payload plus this study's solve path, so
        # every invalidation input lives in one place (engine.py).
        return content_hash(
            {
                **cache_key_payload(scenario),
                "solver": self.solver_name,
                "options": self._solver_options,
            }
        )

    def submit(
        self, shards: int | None = None, manager: Any = None
    ) -> "Any":
        """Run this study as an async sharded job; returns an AsyncResult.

        The scenario is queued on a :class:`~repro.jobs.JobManager`
        (the process-global default when ``manager`` is None), split
        into up to ``shards`` content-hash slices and evaluated on
        background threads — ``submit().result()`` is record-for-record
        identical to :meth:`run`.  Import is deferred because the jobs
        package builds on Study.
        """
        from .jobs import AsyncResult
        from .jobs.manager import JobManager

        if manager is None:
            manager = _default_job_manager()
        elif not isinstance(manager, JobManager):
            raise TypeError(
                f"manager must be a JobManager, got {type(manager).__name__}"
            )
        record = manager.submit(
            self.scenario(),
            solver=self.solver_name,
            options=self._solver_options,
            shards=shards,
        )
        return AsyncResult(manager, record.id)

    def run(self) -> ResultSet:
        """Compile, solve, and package — the one call that does it all.

        Engine-backed solvers (``auto``, ``vectorized``, ``numerical``)
        delegate straight to :func:`repro.explore.engine.explore`, so a
        Study shares the engine's cache entries — a sweep cached through
        the historical ``explore()`` door is a cache hit here too.
        Scalar and custom solvers run through the registry contract with
        an equivalent Study-level cache.
        """
        scenario = self.scenario()
        solver = get_solver(self._solver)
        obs.inc("solver.calls", solver=solver.name)
        with obs.span("study.run", study=self._name, solver=solver.name):
            if isinstance(solver, EngineSolver) and not self._solver_options:
                return self._run_through_engine(scenario, solver)
            return self._run_through_registry(scenario, solver)

    def _run_through_engine(
        self, scenario: Scenario, solver: EngineSolver
    ) -> ResultSet:
        exploration = explore_scenario(
            scenario,
            method=solver.engine_method,
            jobs=self._jobs,
            cache=self._cache,
            use_cache=self._use_cache,
        )
        return ResultSet(
            records=exploration.points,
            solver=solver.name,
            scenario=scenario,
            stats=exploration.stats,
            cache_hit=exploration.cache_hit,
            cache_key=exploration.cache_key,
            cache_path=exploration.cache_path,
        )

    def _run_through_registry(
        self, scenario: Scenario, solver: Solver
    ) -> ResultSet:
        cache: TieredCache | None = None
        key = ""
        if self._use_cache:
            cache = as_cache(self._cache)
            key = self._cache_key(scenario)
            stored = cache.get(key)
            if stored is not None:
                # Old entries store a row-wise "records" list, new ones
                # the compact columnar payload; both load identically.
                table = ResultTable.from_cache_payload(stored)
                return ResultSet(
                    records=table.rows(),
                    solver=solver.name,
                    scenario=scenario,
                    stats=EvaluationStats.from_dict(stored["stats"]),
                    cache_hit=True,
                    cache_key=key,
                    cache_path=cache.path_for(key),
                )

        timer = obs.PhaseTimer("solver")
        started = time.perf_counter()
        with timer.phase("expand"):
            points = scenario.expand()
        with timer.phase("solve", solver=solver.name):
            outcomes = solver.solve(
                points, jobs=self._jobs, **self._solver_options
            )
        elapsed = time.perf_counter() - started

        with timer.phase("analysis"):
            table = ResultTable.from_outcomes(outcomes)
            stats = EvaluationStats.from_outcomes(
                outcomes, elapsed, phases=timer.phases
            )
        cache_path = None
        if cache is not None:
            with timer.phase("cache_write"):
                cache_path = cache.put(
                    key,
                    {
                        "schema": CACHE_SCHEMA_VERSION,
                        "solver": solver.name,
                        "scenario": scenario.to_dict(),
                        "stats": stats.to_dict(),
                        "columns": table.to_payload_columns(),
                    },
                )
            stats = replace(stats, phases=dict(timer.phases))
        return ResultSet(
            records=table.rows(),
            solver=solver.name,
            scenario=scenario,
            stats=stats,
            cache_hit=False,
            cache_key=key,
            cache_path=cache_path,
        )
