"""Trace context: the identity a request carries across process hops.

A :class:`TraceContext` is the W3C-trace-context-shaped triple
``(trace_id, span_id, sampled)``: the 32-hex-digit trace id names one
logical operation end to end (a client call, the server work it causes,
the async job that work spawns), and the 16-hex-digit span id names the
*current* position in that operation — the span a new child should hang
under.  It travels on the ``traceparent`` header
(``00-<trace_id>-<span_id>-<flags>``) and unifies with the repository's
older ``X-Request-Id``: a request id defaults to the first 16 hex digits
of the trace id, so the two correlate by prefix when nobody overrides
either.

Propagation inside a process is a plain thread-local: whoever owns a
boundary (the HTTP handler, the job dispatcher, a shard worker) calls
:func:`set_context` / :func:`clear_context` — or the composite
:func:`repro.obs.adopt` which moves a tracer *and* a context onto the
current thread at once.  :class:`~repro.obs.spans.SpanTracer` reads the
active context exactly once, when a span opens at the bottom of an empty
stack: that span's ``parent_id`` becomes the context's span id, which is
how a span tree started on one thread (a job's shard worker) stitches
under a span finished long ago on another (the submitting HTTP request).

Everything here is allocation-light and lock-free; with tracing off
nothing in this module runs on any hot path.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, replace

__all__ = [
    "TRACEPARENT_HEADER",
    "TraceContext",
    "activate",
    "clear_context",
    "current_context",
    "mint_span_id",
    "mint_trace_id",
    "parse_traceparent",
    "set_context",
]

#: The propagation header, lowercase per the W3C trace-context spec
#: (HTTP header lookup is case-insensitive either way).
TRACEPARENT_HEADER = "traceparent"

_HEX = frozenset("0123456789abcdef")


def mint_trace_id() -> str:
    """A fresh 32-hex-digit (128-bit) trace id."""
    return os.urandom(16).hex()


def mint_span_id() -> str:
    """A fresh 16-hex-digit (64-bit) span id."""
    return os.urandom(8).hex()


def _is_hex(value: str, width: int) -> bool:
    return len(value) == width and set(value) <= _HEX


@dataclass(frozen=True)
class TraceContext:
    """One position inside one distributed trace."""

    trace_id: str
    span_id: str
    sampled: bool = True

    @classmethod
    def mint(cls, sampled: bool = True) -> "TraceContext":
        """A brand-new trace rooted at a brand-new span id."""
        return cls(mint_trace_id(), mint_span_id(), sampled)

    def child(self, span_id: str | None = None) -> "TraceContext":
        """The same trace, positioned at ``span_id`` (minted if omitted)."""
        return replace(self, span_id=span_id or mint_span_id())

    @property
    def request_id(self) -> str:
        """The ``X-Request-Id`` this trace implies (trace id prefix)."""
        return self.trace_id[:16]

    def to_traceparent(self) -> str:
        """The ``traceparent`` header value (version 00)."""
        flags = "01" if self.sampled else "00"
        return f"00-{self.trace_id}-{self.span_id}-{flags}"


def parse_traceparent(header: str | None) -> TraceContext | None:
    """A :class:`TraceContext` from a ``traceparent`` header, or None.

    Accepts any non-``ff`` two-hex-digit version (later versions are
    specified to stay parseable as version 00).  All-zero trace or span
    ids are invalid per the spec and rejected, as is anything that does
    not look like ``xx-<32 hex>-<16 hex>-<2 hex>``.
    """
    if not header:
        return None
    parts = header.strip().lower().split("-")
    if len(parts) < 4:
        return None
    version, trace_id, span_id, flags = parts[0], parts[1], parts[2], parts[3]
    if not (_is_hex(version, 2) and version != "ff"):
        return None
    if version == "00" and len(parts) != 4:
        return None
    if not (_is_hex(trace_id, 32) and set(trace_id) != {"0"}):
        return None
    if not (_is_hex(span_id, 16) and set(span_id) != {"0"}):
        return None
    if not _is_hex(flags, 2):
        return None
    sampled = bool(int(flags, 16) & 0x01)
    return TraceContext(trace_id, span_id, sampled)


# ---------------------------------------------------------------------------
# Per-thread activation.
# ---------------------------------------------------------------------------

_active = threading.local()


def current_context() -> TraceContext | None:
    """The thread's active trace context, or None outside any trace."""
    return getattr(_active, "context", None)


def set_context(context: TraceContext | None) -> None:
    """Install ``context`` on the current thread (None detaches)."""
    _active.context = context


def clear_context() -> None:
    """Detach the current thread's trace context."""
    _active.context = None


class activate:
    """Context manager: install a context, restore the previous on exit.

    Reentrant and exception-safe; used by boundaries that nest (a shard
    worker thread is reused across jobs and must not leak one job's
    context into the next).
    """

    __slots__ = ("_context", "_previous")

    def __init__(self, context: TraceContext | None) -> None:
        self._context = context
        self._previous: TraceContext | None = None

    def __enter__(self) -> TraceContext | None:
        self._previous = current_context()
        set_context(self._context)
        return self._context

    def __exit__(self, exc_type, exc, tb) -> bool:
        set_context(self._previous)
        return False
