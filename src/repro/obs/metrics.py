"""Process-global metrics: thread-safe counters, gauges and histograms.

The registry is a flat namespace of *instruments*, each identified by a
dotted name (``cache.memory.hits``, ``http.latency_seconds``) plus an
optional label set (``route="/v1/explore", status="200"``) — the same
(name, labels) pair always returns the same instrument object, so hot
paths can hold a reference and skip the lookup entirely.  Every mutation
takes the instrument's own lock: Python's ``+=`` on an attribute is a
read-modify-write across bytecodes, and the serving layer increments
from many handler threads at once.

Three instrument kinds cover the repository's needs:

* :class:`Counter` — monotonically increasing float (events, points,
  accumulated seconds).
* :class:`Gauge` — a value that goes both ways (entries in a cache,
  uptime refreshed at scrape time).
* :class:`Histogram` — fixed cumulative buckets plus sum and count
  (request latency).  Buckets are chosen at creation and never change.

The registry renders to a JSON-ready snapshot (:meth:`MetricsRegistry.
snapshot`) and to the Prometheus text exposition format
(:mod:`repro.obs.export`).  Nothing here imports outside the standard
library, and nothing here decides *whether* telemetry is on — that is
the facade's job (:mod:`repro.obs`).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Iterable, Mapping

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Default histogram buckets, tuned for request/sweep latencies in
#: seconds: sub-millisecond cache hits up to multi-second cold sweeps.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Label values rendered into instrument keys and exposition output are
#: always strings; anything else is coerced with ``str()`` at the call
#: site so `status=200` and `status="200"` name the same series.
Labels = tuple[tuple[str, str], ...]


def _labels_key(labels: Mapping[str, Any]) -> Labels:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Instrument:
    """Shared identity: a dotted name plus a sorted label tuple."""

    __slots__ = ("name", "labels", "_lock")

    kind = "instrument"

    def __init__(self, name: str, labels: Labels = ()) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()

    @property
    def key(self) -> str:
        """The display key: ``name{label=value,...}`` or the bare name."""
        if not self.labels:
            return self.name
        rendered = ",".join(f"{k}={v}" for k, v in self.labels)
        return f"{self.name}{{{rendered}}}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.key}>"


class Counter(_Instrument):
    """Monotonically increasing value; negative increments are rejected."""

    __slots__ = ("_value",)

    kind = "counter"

    def __init__(self, name: str, labels: Labels = ()) -> None:
        super().__init__(name, labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.key} cannot decrease (inc {amount!r})"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge(_Instrument):
    """A value that can go up and down (set/add semantics)."""

    __slots__ = ("_value",)

    kind = "gauge"

    def __init__(self, name: str, labels: Labels = ()) -> None:
        super().__init__(name, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram(_Instrument):
    """Fixed-bucket cumulative histogram with sum and count.

    ``buckets`` are the finite upper bounds, strictly increasing; an
    implicit +Inf bucket always exists, so ``observe`` never loses a
    sample.  Bucket counts are stored per-bucket (non-cumulative) and
    accumulated at snapshot time, matching Prometheus's cumulative
    ``_bucket{le=...}`` exposition.
    """

    __slots__ = ("buckets", "_counts", "_sum", "_count")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: Labels = (),
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError(
                f"histogram {name!r} buckets must be non-empty and "
                f"strictly increasing, got {bounds}"
            )
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: the +Inf bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        position = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[position] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, +Inf last."""
        with self._lock:
            counts = list(self._counts)
        total = 0
        out: list[tuple[float, int]] = []
        for bound, count in zip(
            (*self.buckets, float("inf")), counts
        ):
            total += count
            out.append((bound, total))
        return out

    def to_dict(self) -> dict[str, Any]:
        with self._lock:
            counts = list(self._counts)
            total_sum, total_count = self._sum, self._count
        cumulative: dict[str, int] = {}
        running = 0
        for bound, count in zip((*self.buckets, float("inf")), counts):
            running += count
            label = "+Inf" if bound == float("inf") else f"{bound:g}"
            cumulative[label] = running
        return {"count": total_count, "sum": total_sum, "buckets": cumulative}


class MetricsRegistry:
    """Thread-safe, process-wide instrument store.

    Instruments are created on first use and live for the registry's
    lifetime; asking for an existing name with a different kind (or a
    histogram with different buckets) is a programming error and raises
    rather than silently forking the series.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[tuple[str, Labels], _Instrument] = {}

    def _get_or_create(
        self, cls, name: str, labels: Mapping[str, Any], **kwargs
    ):
        key = (name, _labels_key(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(name, key[1], **kwargs)
                self._instruments[key] = instrument
                return instrument
        if not isinstance(instrument, cls):
            raise ValueError(
                f"instrument {instrument.key} is a {instrument.kind}, "
                f"not a {cls.kind}"
            )
        return instrument

    # -- instrument access ---------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] | None = None,
        **labels: Any,
    ) -> Histogram:
        kwargs = {} if buckets is None else {"buckets": buckets}
        histogram = self._get_or_create(Histogram, name, labels, **kwargs)
        if buckets is not None and histogram.buckets != tuple(
            float(b) for b in buckets
        ):
            raise ValueError(
                f"histogram {histogram.key} already exists with buckets "
                f"{histogram.buckets}; cannot redefine"
            )
        return histogram

    # -- one-shot conveniences (the facade's hot-path surface) ---------------
    def inc(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        self.counter(name, **labels).inc(amount)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        self.histogram(name, **labels).observe(value)

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        self.gauge(name, **labels).set(value)

    # -- introspection -------------------------------------------------------
    def instruments(self) -> list[_Instrument]:
        """Every instrument, sorted by display key (stable exposition)."""
        with self._lock:
            instruments = list(self._instruments.values())
        return sorted(instruments, key=lambda i: (i.name, i.labels))

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready view: ``{counters: {...}, gauges: {...}, histograms: {...}}``."""
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, Any] = {}
        for instrument in self.instruments():
            if isinstance(instrument, Counter):
                counters[instrument.key] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[instrument.key] = instrument.value
            elif isinstance(instrument, Histogram):
                histograms[instrument.key] = instrument.to_dict()
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def reset(self) -> None:
        """Drop every instrument (tests and long-lived processes only)."""
        with self._lock:
            self._instruments.clear()
