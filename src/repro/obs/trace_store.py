"""A bounded in-memory store of finished distributed traces.

The service keeps the last N request traces here so "why was *this*
request slow?" is answerable on a live server (``GET /v1/traces``)
without any external collector.  One *trace* is everything that shares a
trace id: the HTTP request's span tree, plus — arriving later, from
other threads — the span trees of any async job that request submitted.
:func:`assemble_tree` stitches those independently-finished trees into
one nested view by matching each tree's ``parent_id`` against span ids
anywhere else in the trace.

Retention is tail-based rather than strictly FIFO: a plain ring buffer
under heavy healthy traffic evicts exactly the traces worth keeping
(the rare error, the one slow outlier) before anyone reads them.  When
the store is over capacity it therefore evicts the *oldest
uninteresting* trace first — a trace is protected while it is an error
trace or among the ``keep_slowest`` slowest for its route — and only
falls back to evicting protected traces when nothing else is left.

Everything is process-memory and lock-guarded; nothing here touches a
hot path when tracing is off (the server simply never constructs one).
"""

from __future__ import annotations

import copy
import threading
import time
from typing import Any, Iterable, Mapping

__all__ = ["DEFAULT_TRACE_CAPACITY", "TraceStore", "assemble_tree"]

#: Default ring-buffer size (whole traces, not spans).
DEFAULT_TRACE_CAPACITY = 512


def _walk(node: dict[str, Any], index: dict[str, dict[str, Any]]) -> None:
    span_id = node.get("span_id", "")
    if span_id:
        index[span_id] = node
    for child in node.get("children", ()):
        _walk(child, index)


def assemble_tree(spans: Iterable[Mapping[str, Any]]) -> list[dict[str, Any]]:
    """Stitch independently finished span trees into one nested tree.

    ``spans`` are root span dicts (:meth:`repro.obs.spans.Span.to_dict`
    shape, children already nested) collected from any number of
    tracers/threads.  A root whose ``parent_id`` names a span anywhere
    in the set becomes that span's child; the rest stay top-level
    roots.  Children merge in ``started_at`` order, so a job span
    appears after the request phases that preceded it.  The input is
    never mutated.
    """
    nodes = [copy.deepcopy(dict(span)) for span in spans]
    index: dict[str, dict[str, Any]] = {}
    for node in nodes:
        _walk(node, index)
    roots: list[dict[str, Any]] = []
    for node in nodes:
        parent = index.get(node.get("parent_id", ""))
        if parent is not None and parent is not node:
            parent.setdefault("children", []).append(node)
            parent["children"].sort(key=lambda c: c.get("started_at", 0.0))
        else:
            roots.append(node)
    roots.sort(key=lambda node: node.get("started_at", 0.0))
    return roots


def _tree_has_error(node: Mapping[str, Any]) -> bool:
    if node.get("status") == "error":
        return True
    return any(_tree_has_error(child) for child in node.get("children", ()))


class TraceStore:
    """Thread-safe bounded store of finished traces, newest last.

    ``capacity`` bounds the number of retained traces; ``keep_slowest``
    is the per-route count of slowest traces shielded from eviction
    (error traces are always shielded while anything evictable
    remains).
    """

    def __init__(
        self,
        capacity: int = DEFAULT_TRACE_CAPACITY,
        keep_slowest: int = 5,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.keep_slowest = max(0, keep_slowest)
        self._lock = threading.Lock()
        # Insertion-ordered: dicts preserve order, eviction scans from
        # the front (oldest).  Values are the mutable trace records.
        self._traces: dict[str, dict[str, Any]] = {}
        self._evicted = 0

    # -- ingest --------------------------------------------------------------
    def record(
        self,
        trace_id: str,
        request_id: str = "",
        route: str = "",
        method: str = "",
        status: int = 0,
        duration_seconds: float = 0.0,
        error: bool = False,
        spans: Iterable[Mapping[str, Any]] = (),
    ) -> dict[str, Any]:
        """Store (or merge into) the trace for one finished request."""
        spans = [dict(span) for span in spans]
        with self._lock:
            trace = self._traces.get(trace_id)
            if trace is None:
                trace = self._traces[trace_id] = {
                    "trace_id": trace_id,
                    "request_id": request_id,
                    "route": route,
                    "method": method,
                    "status": int(status),
                    "started_at": round(time.time() - duration_seconds, 6),
                    "duration_seconds": float(duration_seconds),
                    "error": bool(error),
                    "spans": [],
                    "n_jobs": 0,
                }
            else:
                # A job's spans can land before the HTTP side records
                # (or two requests can share a client-minted trace);
                # the request's metadata wins, durations take the max.
                trace.update(
                    request_id=request_id or trace["request_id"],
                    route=route or trace["route"],
                    method=method or trace["method"],
                    status=int(status) or trace["status"],
                    duration_seconds=max(
                        float(duration_seconds), trace["duration_seconds"]
                    ),
                    error=bool(error) or trace["error"],
                )
            trace["spans"].extend(spans)
            if any(_tree_has_error(span) for span in spans):
                trace["error"] = True
            self._evict_locked()
            return trace

    def add_spans(
        self,
        trace_id: str,
        spans: Iterable[Mapping[str, Any]],
        job_id: str = "",
    ) -> dict[str, Any]:
        """Append late-arriving span trees (an async job's) to a trace.

        Creates a bare record when the trace is unknown — the request
        side may have been evicted (or never traced, e.g. a recovered
        job after a restart); the job's tree is still worth keeping.
        """
        spans = list(spans)
        duration = max(
            (float(span.get("wall_seconds", 0.0)) for span in spans),
            default=0.0,
        )
        with self._lock:
            trace = self._traces.get(trace_id)
            if trace is None:
                return self._locked_fallthrough_record(
                    trace_id, spans, duration, job_id
                )
            trace["spans"].extend(dict(span) for span in spans)
            trace["duration_seconds"] = max(
                trace["duration_seconds"], duration
            )
            if any(_tree_has_error(span) for span in spans):
                trace["error"] = True
            if job_id:
                trace["n_jobs"] += 1
            return trace

    def _locked_fallthrough_record(
        self,
        trace_id: str,
        spans: list[Mapping[str, Any]],
        duration: float,
        job_id: str,
    ) -> dict[str, Any]:
        trace = self._traces[trace_id] = {
            "trace_id": trace_id,
            "request_id": trace_id[:16],
            "route": "",
            "method": "",
            "status": 0,
            "started_at": round(time.time() - duration, 6),
            "duration_seconds": duration,
            "error": any(_tree_has_error(span) for span in spans),
            "spans": [dict(span) for span in spans],
            "n_jobs": 1 if job_id else 0,
        }
        self._evict_locked()
        return trace

    # -- retention -----------------------------------------------------------
    def _protected_locked(self) -> set[str]:
        slowest: dict[str, list[tuple[float, str]]] = {}
        protected: set[str] = set()
        for trace_id, trace in self._traces.items():
            if trace["error"]:
                protected.add(trace_id)
                continue
            slowest.setdefault(trace["route"], []).append(
                (trace["duration_seconds"], trace_id)
            )
        for candidates in slowest.values():
            candidates.sort(reverse=True)
            protected.update(
                trace_id for _, trace_id in candidates[: self.keep_slowest]
            )
        return protected

    def _evict_locked(self) -> None:
        if len(self._traces) <= self.capacity:
            return
        protected = self._protected_locked()
        while len(self._traces) > self.capacity:
            victim = next(
                (t for t in self._traces if t not in protected),
                next(iter(self._traces)),  # all protected: oldest goes
            )
            del self._traces[victim]
            self._evicted += 1

    # -- queries -------------------------------------------------------------
    def _summary(self, trace: dict[str, Any]) -> dict[str, Any]:
        return {
            "trace_id": trace["trace_id"],
            "request_id": trace["request_id"],
            "route": trace["route"],
            "method": trace["method"],
            "status": trace["status"],
            "started_at": trace["started_at"],
            "duration_ms": round(trace["duration_seconds"] * 1e3, 3),
            "error": trace["error"],
            "n_spans": len(trace["spans"]),
            "n_jobs": trace["n_jobs"],
        }

    def summaries(
        self,
        route: str | None = None,
        min_duration_ms: float | None = None,
        errors_only: bool = False,
        limit: int = 50,
    ) -> list[dict[str, Any]]:
        """Newest-first trace summaries, optionally filtered."""
        with self._lock:
            traces = list(self._traces.values())
        out: list[dict[str, Any]] = []
        for trace in reversed(traces):
            if route is not None and trace["route"] != route:
                continue
            if (
                min_duration_ms is not None
                and trace["duration_seconds"] * 1e3 < min_duration_ms
            ):
                continue
            if errors_only and not trace["error"]:
                continue
            out.append(self._summary(trace))
            if len(out) >= limit:
                break
        return out

    def get(self, trace_id: str) -> dict[str, Any] | None:
        """One trace in full: summary fields plus the assembled tree."""
        with self._lock:
            trace = self._traces.get(trace_id)
            if trace is None:
                return None
            spans = [copy.deepcopy(span) for span in trace["spans"]]
            summary = self._summary(trace)
        return {**summary, "tree": assemble_tree(spans)}

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            traces = list(self._traces.values())
            evicted = self._evicted
        return {
            "traces": len(traces),
            "capacity": self.capacity,
            "errors": sum(1 for trace in traces if trace["error"]),
            "evicted": evicted,
        }

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()
