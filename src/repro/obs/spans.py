"""Nestable timing spans: where a request or a run spends its time.

A :class:`Span` is a context manager measuring wall time
(``perf_counter``) and CPU time (``thread_time``) for one named phase,
with free-form string labels.  Spans nest: a :class:`SpanTracer` keeps a
per-thread stack, so a span opened while another is active becomes its
child, and each thread's completed top-level spans accumulate as roots.
The finished tree exports as JSON (:meth:`SpanTracer.to_dict`) and
renders as an indented text profile (:func:`repro.obs.export.
render_span_tree`) — the ``repro explore --profile`` output.

A span records an exception passing through it (``status="error"`` plus
the exception's repr) and re-raises — tracing never swallows failures.

Tracers are explicit objects: whoever wants a tree (the ``--profile``
code path, a test) creates one and installs it on the current thread via
the facade (:func:`repro.obs.install_tracer`).  With no tracer
installed, :func:`repro.obs.span` hands out a shared no-op span, so
instrumented code pays one thread-local read on the disabled path.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Mapping

from .context import current_context, mint_span_id

__all__ = ["NULL_SPAN", "Span", "SpanTracer"]


def _thread_cpu() -> float:
    # thread_time is POSIX/Windows; fall back for exotic platforms.
    try:
        return time.thread_time()
    except (AttributeError, OSError):  # pragma: no cover - platform gap
        return time.process_time()


class Span:
    """One timed phase: name, labels, wall/CPU seconds, children."""

    __slots__ = (
        "name",
        "labels",
        "children",
        "status",
        "error",
        "wall_seconds",
        "cpu_seconds",
        "span_id",
        "parent_id",
        "started_at",
        "_tracer",
        "_wall_start",
        "_cpu_start",
        "_parented",
    )

    def __init__(
        self,
        name: str,
        labels: Mapping[str, Any] | None = None,
        tracer: "SpanTracer | None" = None,
    ) -> None:
        self.name = name
        self.labels = {k: str(v) for k, v in (labels or {}).items()}
        self.children: list[Span] = []
        self.status = "ok"
        self.error = ""
        self.wall_seconds = 0.0
        self.cpu_seconds = 0.0
        # Identity for distributed-trace assembly: minted when the span
        # opens on a tracer; a root span at the bottom of an empty stack
        # adopts the thread's TraceContext span id as its parent, which
        # is how trees stitch across thread and process boundaries.
        self.span_id = ""
        self.parent_id = ""
        self.started_at = 0.0
        self._tracer = tracer
        self._wall_start = 0.0
        self._cpu_start = 0.0
        self._parented = False

    # -- context manager ------------------------------------------------------
    def __enter__(self) -> "Span":
        if self._tracer is not None:
            self._tracer._push(self)
        self.started_at = time.time()
        self._cpu_start = _thread_cpu()
        self._wall_start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.wall_seconds = time.perf_counter() - self._wall_start
        self.cpu_seconds = _thread_cpu() - self._cpu_start
        if exc is not None:
            self.status = "error"
            self.error = f"{type(exc).__name__}: {exc}"
        if self._tracer is not None:
            self._tracer._pop(self)
        return False  # never swallow

    # -- export ---------------------------------------------------------------
    @property
    def self_seconds(self) -> float:
        """Wall time not accounted for by child spans."""
        return max(
            0.0,
            self.wall_seconds - sum(c.wall_seconds for c in self.children),
        )

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "name": self.name,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "status": self.status,
        }
        if self.span_id:
            payload["span_id"] = self.span_id
        if self.parent_id:
            payload["parent_id"] = self.parent_id
        if self.started_at:
            payload["started_at"] = round(self.started_at, 6)
        if self.labels:
            payload["labels"] = dict(self.labels)
        if self.error:
            payload["error"] = self.error
        if self.children:
            payload["children"] = [c.to_dict() for c in self.children]
        return payload


class _NullSpan:
    """The shared disabled span: enter/exit do nothing, times read 0."""

    __slots__ = ()

    name = "null"
    labels: dict[str, str] = {}
    children: list = []
    status = "ok"
    error = ""
    wall_seconds = 0.0
    cpu_seconds = 0.0
    span_id = ""
    parent_id = ""
    started_at = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class SpanTracer:
    """Per-thread span stacks feeding one shared list of root spans.

    Each thread nests its own spans independently (a server handler
    thread cannot become a child of another request); completed
    top-level spans from every thread land in :attr:`roots`, guarded by
    a lock.  One tracer is meant to cover one logical unit — a CLI run,
    a test, a request — then be read and discarded.
    """

    def __init__(self) -> None:
        self._local = threading.local()
        self._roots_lock = threading.Lock()
        self.roots: list[Span] = []

    # -- span lifecycle (driven by Span.__enter__/__exit__) -------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        stack = self._stack()
        if not span.span_id:
            span.span_id = mint_span_id()
        if stack:
            span.parent_id = stack[-1].span_id
            stack[-1].children.append(span)
            span._parented = True
        else:
            # A thread's first span adopts the active TraceContext as
            # its parent — the cross-thread (and cross-process) stitch.
            context = current_context()
            if context is not None:
                span.parent_id = context.span_id
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        # Normally span is the top; an unbalanced exit drops through to it.
        while stack:
            if stack.pop() is span:
                break
        if not span._parented:
            with self._roots_lock:
                self.roots.append(span)

    def current_span(self) -> Span | None:
        """The span currently open on *this* thread, or None."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    # -- span factory ----------------------------------------------------------
    def span(self, name: str, **labels: Any) -> Span:
        """A new span bound to this tracer (use as a context manager)."""
        return Span(name, labels, tracer=self)

    # -- export ----------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        with self._roots_lock:
            roots = list(self.roots)
        return {"roots": [root.to_dict() for root in roots]}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def reset(self) -> None:
        with self._roots_lock:
            self.roots.clear()
        self._local = threading.local()
