"""Exporters: Prometheus text exposition, span-tree and phase rendering.

One module owns every human- and scraper-facing rendering of the
telemetry state, so the service endpoint, the CLI ``--profile`` output
and the tests all agree on the format:

* :func:`prometheus_text` — the Prometheus text exposition format
  (version 0.0.4): dotted instrument names become underscore metric
  names, counters gain the ``_total`` suffix, histograms expose
  cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``, and
  label values are escaped per the spec (backslash, double quote,
  newline).
* :func:`render_span_tree` — the indented wall/CPU profile of a
  :class:`~repro.obs.spans.SpanTracer`'s roots.
* :func:`render_phases` — the per-phase breakdown table printed under
  ``--profile`` (and embedded in benchmark snapshots).
"""

from __future__ import annotations

from typing import Any, Mapping

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .spans import Span, SpanTracer

__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "prometheus_text",
    "render_phases",
    "render_span_tree",
    "render_trace",
]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def metric_name(name: str, suffix: str = "") -> str:
    """Dotted instrument name → Prometheus metric name.

    Dots and dashes fold to underscores; anything else non-alphanumeric
    folds too, so every exposed name matches ``[a-zA-Z_][a-zA-Z0-9_]*``.
    """
    folded = "".join(
        c if c.isalnum() or c == "_" else "_" for c in name
    )
    if folded and folded[0].isdigit():
        folded = "_" + folded
    return folded + suffix


def escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format."""
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _labels_text(labels, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [*labels, *extra]
    if not pairs:
        return ""
    rendered = ",".join(
        f'{metric_name(k)}="{escape_label_value(v)}"' for k, v in pairs
    )
    return "{" + rendered + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def prometheus_text(registry: MetricsRegistry) -> str:
    """The whole registry in Prometheus text exposition format."""
    lines: list[str] = []
    seen_types: set[str] = set()

    def type_line(name: str, kind: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for instrument in registry.instruments():
        if isinstance(instrument, Counter):
            name = metric_name(instrument.name, "_total")
            type_line(name, "counter")
            lines.append(
                f"{name}{_labels_text(instrument.labels)} "
                f"{_format_value(instrument.value)}"
            )
        elif isinstance(instrument, Gauge):
            name = metric_name(instrument.name)
            type_line(name, "gauge")
            lines.append(
                f"{name}{_labels_text(instrument.labels)} "
                f"{_format_value(instrument.value)}"
            )
        elif isinstance(instrument, Histogram):
            name = metric_name(instrument.name)
            type_line(name, "histogram")
            for bound, cumulative in instrument.cumulative():
                le = "+Inf" if bound == float("inf") else _format_value(bound)
                lines.append(
                    f"{name}_bucket"
                    f"{_labels_text(instrument.labels, (('le', le),))} "
                    f"{cumulative}"
                )
            lines.append(
                f"{name}_sum{_labels_text(instrument.labels)} "
                f"{repr(instrument.sum)}"
            )
            lines.append(
                f"{name}_count{_labels_text(instrument.labels)} "
                f"{instrument.count}"
            )
    return "\n".join(lines) + "\n" if lines else ""


# ---------------------------------------------------------------------------
# Span / phase rendering (the --profile output).
# ---------------------------------------------------------------------------


def _render_span(span: Span, depth: int, lines: list[str]) -> None:
    label_text = ""
    if span.labels:
        rendered = ", ".join(f"{k}={v}" for k, v in span.labels.items())
        label_text = f"  [{rendered}]"
    marker = "" if span.status == "ok" else f"  !! {span.error}"
    indent = "  " * depth
    name_field = f"{indent}{span.name}{label_text}"
    lines.append(
        f"{name_field:<48} {span.wall_seconds * 1e3:>10.2f} ms wall "
        f"{span.cpu_seconds * 1e3:>10.2f} ms cpu{marker}"
    )
    for child in span.children:
        _render_span(child, depth + 1, lines)


def render_span_tree(tracer: SpanTracer) -> str:
    """Indented per-span wall/CPU profile of every completed root span."""
    lines: list[str] = []
    for root in tracer.roots:
        _render_span(root, 0, lines)
    return "\n".join(lines) if lines else "(no spans recorded)"


def _render_trace_node(
    node: Mapping[str, Any], depth: int, lines: list[str]
) -> None:
    label_text = ""
    labels = node.get("labels") or {}
    if labels:
        rendered = ", ".join(f"{k}={v}" for k, v in labels.items())
        label_text = f"  [{rendered}]"
    marker = (
        "" if node.get("status", "ok") == "ok"
        else f"  !! {node.get('error', 'error')}"
    )
    indent = "  " * depth
    name_field = f"{indent}{node.get('name', '?')}{label_text}"
    lines.append(
        f"{name_field:<48} "
        f"{float(node.get('wall_seconds', 0.0)) * 1e3:>10.2f} ms wall "
        f"{float(node.get('cpu_seconds', 0.0)) * 1e3:>10.2f} ms cpu{marker}"
    )
    for child in node.get("children", ()):
        _render_trace_node(child, depth + 1, lines)


def render_trace(trace: Mapping[str, Any]) -> str:
    """One stored trace (a ``GET /v1/traces/{id}`` payload) as text.

    The JSON twin of :func:`render_span_tree`: same columns, but fed by
    the trace store's assembled dict tree rather than live Span objects,
    with a one-line header naming the trace.
    """
    header = (
        f"trace {trace.get('trace_id', '?')}  "
        f"{trace.get('method', '')} {trace.get('route', '')}  "
        f"status={trace.get('status', 0)}  "
        f"{float(trace.get('duration_ms', 0.0)):.2f} ms"
    )
    lines = [header]
    for root in trace.get("tree", ()):
        _render_trace_node(root, 0, lines)
    if len(lines) == 1:
        lines.append("(no spans recorded)")
    return "\n".join(lines)


def render_phases(
    phases: Mapping[str, float], total_seconds: float | None = None
) -> str:
    """The phase breakdown table: seconds and share per engine phase.

    ``total_seconds`` defaults to the sum of the phases; passing the
    externally measured total instead makes the share column honest
    about unattributed time (the residual is printed as ``(other)``).
    """
    if not phases:
        return "(no phases recorded)"
    phase_sum = sum(phases.values())
    total = total_seconds if total_seconds is not None else phase_sum
    lines = [f"{'phase':<16} {'seconds':>10} {'share':>8}"]
    for name, seconds in sorted(
        phases.items(), key=lambda item: item[1], reverse=True
    ):
        share = seconds / total if total > 0 else 0.0
        lines.append(f"{name:<16} {seconds:>10.4f} {share:>7.1%}")
    if total_seconds is not None and total > 0:
        residual = max(0.0, total - phase_sum)
        lines.append(f"{'(other)':<16} {residual:>10.4f} {residual / total:>7.1%}")
        lines.append(
            f"{'total':<16} {total:>10.4f} {1.0:>7.1%}"
        )
    return "\n".join(lines)
