"""``repro.obs`` — the dependency-free telemetry layer.

One facade over three pieces:

* a process-global **metrics registry** (:mod:`.metrics`) of thread-safe
  counters, gauges and fixed-bucket histograms, feeding
  ``GET /v1/metrics`` (Prometheus text + JSON) and ``repro cache``;
* a **span tracer** (:mod:`.spans`) of nestable context-manager spans
  with wall/CPU time and labels, feeding ``repro explore --profile``;
* the **exporters** (:mod:`.export`) that render both.

The facade is the zero-overhead switch.  Telemetry is *off* by default:
:func:`inc`, :func:`observe` and :func:`set_gauge` check one module
global and return, and :func:`span` hands out a shared no-op span when
no tracer is installed on the current thread.  It turns on via

* the environment: ``REPRO_TELEMETRY=1`` (read once at import),
* :func:`enable` (what ``repro explore --profile`` and the service's
  default config call),
* or any code that installs its own registry/tracer.

Instrumented modules never import the registry directly — they call the
module-level helpers, so the enabled/disabled decision stays in exactly
one place::

    from .. import obs

    obs.inc("cache.memory.hits")
    with obs.span("engine.kernel", technology=tech.name):
        ...

Instrument naming: dotted lowercase names (``engine.points_evaluated``,
``cache.disk.misses``), with dimensions as labels rather than name
fragments (``http.requests`` labelled by ``route`` and ``status``,
``solver.calls`` labelled by ``solver``).
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator

from .context import (
    TRACEPARENT_HEADER,
    TraceContext,
    activate,
    clear_context,
    current_context,
    mint_span_id,
    mint_trace_id,
    parse_traceparent,
    set_context,
)
from .export import (
    PROMETHEUS_CONTENT_TYPE,
    prometheus_text,
    render_phases,
    render_span_tree,
    render_trace,
)
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .spans import NULL_SPAN, Span, SpanTracer
from .trace_store import DEFAULT_TRACE_CAPACITY, TraceStore, assemble_tree

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_TRACE_CAPACITY",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "PROMETHEUS_CONTENT_TYPE",
    "PhaseTimer",
    "Span",
    "SpanTracer",
    "TELEMETRY_ENV",
    "TRACEPARENT_HEADER",
    "TraceContext",
    "TraceStore",
    "activate",
    "adopt",
    "assemble_tree",
    "clear_context",
    "counter_total",
    "current_context",
    "current_tracer",
    "disable",
    "enable",
    "get_registry",
    "inc",
    "install_tracer",
    "is_enabled",
    "mint_span_id",
    "mint_trace_id",
    "observe",
    "parse_traceparent",
    "prometheus_text",
    "render_phases",
    "render_span_tree",
    "render_trace",
    "set_context",
    "set_gauge",
    "snapshot",
    "span",
    "uninstall_tracer",
]

#: Environment switch: any of 1/true/yes/on (case-insensitive) enables
#: the metrics registry for the whole process at import time.
TELEMETRY_ENV = "REPRO_TELEMETRY"

_TRUTHY = ("1", "true", "yes", "on")


def _env_enabled(environ: "os._Environ[str] | dict[str, str]" = os.environ) -> bool:
    return environ.get(TELEMETRY_ENV, "").strip().lower() in _TRUTHY


# The enabled/disabled switch IS this global: None means every metric
# helper returns immediately.  Guarded by a lock only on state changes;
# hot-path reads are a single global load.
_registry: MetricsRegistry | None = None
_state_lock = threading.Lock()

# Tracers install per-thread (a server request must not interleave its
# spans with another thread's), with an optional process-wide default
# (the CLI's --profile covers engine work on worker threads too).
_active_tracer = threading.local()
_default_tracer: SpanTracer | None = None


# ---------------------------------------------------------------------------
# Metrics facade.
# ---------------------------------------------------------------------------


def is_enabled() -> bool:
    """True when the process-global metrics registry is live."""
    return _registry is not None


def enable(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Turn the metrics registry on (idempotent); returns the live one.

    Passing ``registry`` installs that instance (tests, embedders);
    otherwise the existing registry is kept, or a fresh one created.
    Counters survive repeated ``enable()`` calls on purpose — the
    service and a ``--profile`` run in one process share one registry.
    """
    global _registry
    with _state_lock:
        if registry is not None:
            _registry = registry
        elif _registry is None:
            _registry = MetricsRegistry()
        return _registry


def disable() -> None:
    """Turn metrics off; helpers become no-ops again."""
    global _registry
    with _state_lock:
        _registry = None


def get_registry() -> MetricsRegistry | None:
    """The live registry, or None when telemetry is disabled."""
    return _registry


def inc(name: str, amount: float = 1.0, **labels: Any) -> None:
    """Increment counter ``name`` (no-op while telemetry is disabled)."""
    registry = _registry
    if registry is not None:
        registry.inc(name, amount, **labels)


def observe(name: str, value: float, **labels: Any) -> None:
    """Record ``value`` into histogram ``name`` (no-op while disabled)."""
    registry = _registry
    if registry is not None:
        registry.observe(name, value, **labels)


def set_gauge(name: str, value: float, **labels: Any) -> None:
    """Set gauge ``name`` (no-op while telemetry is disabled)."""
    registry = _registry
    if registry is not None:
        registry.set_gauge(name, value, **labels)


def snapshot() -> dict[str, Any]:
    """JSON-ready registry view, with the enabled flag included."""
    registry = _registry
    payload: dict[str, Any] = {"enabled": registry is not None}
    if registry is not None:
        payload.update(registry.snapshot())
    else:
        payload.update({"counters": {}, "gauges": {}, "histograms": {}})
    return payload


def counter_total(name: str) -> float:
    """Sum of counter ``name`` across every label set (0.0 when off).

    Snapshot keys are ``name`` for the unlabelled series and
    ``name{label=value,...}`` for labelled ones; both count.  The chaos
    suite uses this to assert "some fault fired" without caring which
    site label it landed under.
    """
    counters = snapshot()["counters"]
    prefix = name + "{"
    return float(
        sum(
            value
            for key, value in counters.items()
            if key == name or key.startswith(prefix)
        )
    )


# ---------------------------------------------------------------------------
# Span facade.
# ---------------------------------------------------------------------------


def install_tracer(tracer: SpanTracer, default: bool = False) -> SpanTracer:
    """Make ``tracer`` receive this thread's spans (and return it).

    ``default=True`` additionally makes it the process-wide fallback for
    threads that never installed their own — the CLI profile uses this
    so spans from engine worker threads land in the same tree.
    """
    global _default_tracer
    _active_tracer.tracer = tracer
    if default:
        with _state_lock:
            _default_tracer = tracer
    return tracer


def uninstall_tracer() -> None:
    """Detach this thread's tracer (and the process default, if it is it)."""
    global _default_tracer
    tracer = getattr(_active_tracer, "tracer", None)
    _active_tracer.tracer = None
    with _state_lock:
        if _default_tracer is tracer:
            _default_tracer = None


def current_tracer() -> SpanTracer | None:
    """This thread's tracer, falling back to the process default."""
    tracer = getattr(_active_tracer, "tracer", None)
    return tracer if tracer is not None else _default_tracer


def span(name: str, **labels: Any) -> "Span | Any":
    """A context-manager span on the active tracer (no-op without one)."""
    tracer = current_tracer()
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **labels)


@contextmanager
def adopt(
    tracer: SpanTracer | None,
    context: TraceContext | None = None,
) -> Iterator[None]:
    """Run a block with another thread's tracer + trace context adopted.

    The cross-thread propagation primitive: a worker thread (a job's
    shard worker, the job dispatcher) adopts the tracer and the
    :class:`TraceContext` captured where the work was *submitted*, so
    its spans mint into the same tree and parent under the submitting
    span instead of orphaning per-thread.  ``None`` for either argument
    means "inherit whatever this thread already has"; both are restored
    on exit, so pooled threads never leak one job's identity into the
    next.
    """
    previous_tracer = getattr(_active_tracer, "tracer", None)
    previous_context = current_context()
    if tracer is not None:
        _active_tracer.tracer = tracer
    if context is not None:
        set_context(context)
    try:
        yield
    finally:
        _active_tracer.tracer = previous_tracer
        set_context(previous_context)


# ---------------------------------------------------------------------------
# Phase timing (the engine's span + stats carrier).
# ---------------------------------------------------------------------------


class PhaseTimer:
    """Accumulate named phase durations and mirror each one as a span.

    The engine's instrumentation primitive: ``with timer.phase("kernel")``
    always records wall seconds into :attr:`phases` (a handful of
    ``perf_counter`` calls per *sweep*, so the disabled-telemetry cost
    is nanoseconds), and additionally opens ``<prefix>.<name>`` on the
    active span tracer when one is installed.  Re-entering a phase name
    accumulates, so chunked or retried work sums naturally.
    """

    __slots__ = ("prefix", "phases")

    def __init__(self, prefix: str = "") -> None:
        self.prefix = prefix
        self.phases: dict[str, float] = {}

    @contextmanager
    def phase(self, name: str, **labels: Any) -> Iterator[None]:
        span_name = f"{self.prefix}.{name}" if self.prefix else name
        started = time.perf_counter()
        try:
            with span(span_name, **labels):
                yield
        finally:
            elapsed = time.perf_counter() - started
            self.phases[name] = self.phases.get(name, 0.0) + elapsed

    def total(self) -> float:
        return sum(self.phases.values())


# Honour the environment switch once, at import.
if _env_enabled():  # pragma: no cover - exercised via subprocess tests
    enable()
