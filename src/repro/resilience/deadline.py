"""Cooperative end-to-end deadlines.

A :class:`Deadline` is a monotonic-clock expiry plus the original
budget.  It travels two ways:

* **over the wire** as the ``X-Deadline-Ms`` request header (the client
  sends its own timeout, so the server never works past the moment the
  client hangs up), parsed by :meth:`Deadline.from_header`;
* **within a process** through a thread-local set by
  :func:`active_deadline`, so deep layers (the columnar kernel, the
  coalescer's waiter path) read :func:`current_deadline` instead of
  threading an argument through every signature.

Checks are cooperative and cheap: long loops call
:meth:`Deadline.check` (or the module-level :func:`checkpoint`) at
natural chunk boundaries; an expired deadline raises
:class:`DeadlineExceeded` carrying the site that noticed and a
partial-progress snapshot, which the service maps to a structured 504.
With no deadline active, :func:`checkpoint` is one thread-local read.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "DEADLINE_HEADER",
    "Deadline",
    "DeadlineExceeded",
    "active_deadline",
    "checkpoint",
    "current_deadline",
]

#: Request header carrying the client's remaining budget, in integer
#: milliseconds.  Chosen over a float-seconds header so proxies and
#: logs show one unambiguous unit.
DEADLINE_HEADER = "X-Deadline-Ms"

#: Largest accepted budget: a week.  Anything bigger is a unit mistake
#: (seconds pasted where milliseconds belong), not a real deadline.
MAX_DEADLINE_MS = 7 * 24 * 3600 * 1000


class DeadlineExceeded(RuntimeError):
    """Work was stopped at a cooperative check because its budget ran out.

    ``site`` names the checkpoint that noticed (``engine.kernel``,
    ``jobs.shard``, ``coalesce.wait`` …); ``progress`` is whatever
    partial-progress counters that site could cheaply report — the
    service forwards both in the 504 body so a client knows how far the
    work got, not just that it died.
    """

    def __init__(
        self,
        message: str,
        site: str = "",
        budget_ms: float = 0.0,
        progress: dict[str, Any] | None = None,
    ) -> None:
        super().__init__(message)
        self.site = site
        self.budget_ms = budget_ms
        self.progress = dict(progress or {})


class Deadline:
    """A monotonic expiry instant plus the budget it was minted from."""

    __slots__ = ("expires_at", "budget_ms")

    def __init__(self, expires_at: float, budget_ms: float) -> None:
        self.expires_at = expires_at
        self.budget_ms = budget_ms

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A deadline ``seconds`` from now (must be positive)."""
        if not seconds > 0:
            raise ValueError(f"deadline must be positive, got {seconds!r}")
        return cls(time.monotonic() + seconds, seconds * 1000.0)

    @classmethod
    def from_header(cls, value: str) -> "Deadline":
        """Parse an ``X-Deadline-Ms`` header value; raises ``ValueError``."""
        try:
            ms = int(str(value).strip())
        except (TypeError, ValueError):
            raise ValueError(
                f"{DEADLINE_HEADER} must be an integer number of "
                f"milliseconds, got {value!r}"
            ) from None
        if ms <= 0 or ms > MAX_DEADLINE_MS:
            raise ValueError(
                f"{DEADLINE_HEADER} must be in (0, {MAX_DEADLINE_MS}] "
                f"milliseconds, got {ms}"
            )
        return cls.after(ms / 1000.0)

    def header_value(self) -> str:
        """The remaining budget as an ``X-Deadline-Ms`` value (>= 1 ms)."""
        return str(max(1, int(self.remaining() * 1000.0)))

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.expires_at - time.monotonic()

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def check(self, site: str, **progress: Any) -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if time.monotonic() >= self.expires_at:
            raise DeadlineExceeded(
                f"deadline of {self.budget_ms:g} ms exceeded at {site}",
                site=site,
                budget_ms=self.budget_ms,
                progress=progress,
            )

    def __repr__(self) -> str:
        return (
            f"Deadline(budget_ms={self.budget_ms:g}, "
            f"remaining={self.remaining():.3f}s)"
        )


# One thread-local slot: a request handler activates its deadline and
# every layer below reads it without plumbing.
_current = threading.local()


def current_deadline() -> Deadline | None:
    """The deadline active on this thread, or None."""
    return getattr(_current, "deadline", None)


@contextmanager
def active_deadline(deadline: Deadline | None) -> Iterator[None]:
    """Run a block with ``deadline`` active thread-locally (None = no-op).

    The previous value is restored on exit, so nested scopes (a traced
    request calling into a helper that sets its own budget) unwind
    correctly and pooled threads never leak one request's deadline into
    the next.
    """
    previous = getattr(_current, "deadline", None)
    _current.deadline = deadline if deadline is not None else previous
    try:
        yield
    finally:
        _current.deadline = previous


def checkpoint(site: str, **progress: Any) -> None:
    """Check the thread's active deadline, if any (else a no-op)."""
    deadline = getattr(_current, "deadline", None)
    if deadline is not None:
        deadline.check(site, **progress)
