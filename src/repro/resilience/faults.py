"""Deterministic, seedable fault injection.

Chaos testing is only useful if a failure found at seed 1234 fails the
same way tomorrow.  A :class:`FaultPlan` is therefore fully
deterministic: every site draws from its own ``random.Random`` seeded
with ``f"{seed}:{site}"`` and keeps its own call counter, so the k-th
call to a given site fires (or not) identically across runs regardless
of thread interleaving elsewhere.

The spec grammar (``REPRO_FAULTS`` env var or ``repro serve --faults``)
is ``;``-separated clauses::

    seed=1234; cache.read:p=0.5:corrupt; shard.run:n=3; http.response:always

* ``seed=<int>`` — the plan seed (default 0).
* ``<site>:<trigger>[:<mode>]`` — arm one site.
  Triggers: ``p=<float>`` (each call fires with that probability),
  ``n=<int>`` (exactly the Nth call to the site fires, 1-based),
  ``always`` (every call fires).
  Modes: ``error`` (default — raise :class:`FaultError`),
  ``corrupt`` (only meaningful for data-bearing sites: the payload is
  truncated via :func:`mangle`), ``hang=<seconds>`` (sleep that long,
  then continue — exercises watchdogs and deadlines, not error paths).

Sites are fixed (:data:`FAULT_SITES`); unknown sites are a spec error,
so a typo cannot silently arm nothing.

Instrumented code calls the module-level :func:`check`/:func:`mangle`.
With no plan installed (the production default) these are one global
load and a ``None`` test — the "zero overhead when off" contract the
bench gate holds us to.
"""

from __future__ import annotations

import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from .. import obs

__all__ = [
    "FAULTS_ENV",
    "FAULT_SITES",
    "FaultError",
    "FaultPlan",
    "FaultRule",
    "FaultSpecError",
    "active",
    "check",
    "injected_faults",
    "install_faults",
    "mangle",
    "uninstall_faults",
]

#: Environment variable holding a fault spec for ``repro serve``.
FAULTS_ENV = "REPRO_FAULTS"

#: The injectable sites.  A closed set: every site name in a spec must
#: match one of these, and every ``check``/``mangle`` call site in the
#: codebase uses one of these strings.
FAULT_SITES = (
    "cache.read",
    "cache.write",
    "shard.run",
    "http.response",
    "store.write",
)

_MODES = ("error", "corrupt", "hang")


class FaultSpecError(ValueError):
    """A ``--faults`` / ``REPRO_FAULTS`` spec failed to parse."""


class FaultError(RuntimeError):
    """An injected failure (mode ``error``); carries the firing site."""

    def __init__(self, site: str) -> None:
        super().__init__(f"injected fault at {site}")
        self.site = site


@dataclass(frozen=True)
class FaultRule:
    """One armed site: exactly one of ``probability``/``nth``/``always``."""

    site: str
    probability: float | None = None
    nth: int | None = None
    always: bool = False
    mode: str = "error"
    hang_seconds: float = 0.0


def _parse_clause(clause: str) -> FaultRule:
    parts = [part.strip() for part in clause.split(":")]
    if len(parts) < 2 or len(parts) > 3:
        raise FaultSpecError(
            f"fault clause must be site:trigger[:mode], got {clause!r}"
        )
    site = parts[0]
    if site not in FAULT_SITES:
        raise FaultSpecError(
            f"unknown fault site {site!r}; expected one of "
            f"{', '.join(FAULT_SITES)}"
        )
    trigger = parts[1]
    probability: float | None = None
    nth: int | None = None
    always = False
    if trigger == "always":
        always = True
    elif trigger.startswith("p="):
        try:
            probability = float(trigger[2:])
        except ValueError:
            raise FaultSpecError(
                f"bad probability in {clause!r}"
            ) from None
        if not 0.0 < probability <= 1.0:
            raise FaultSpecError(
                f"probability must be in (0, 1], got {probability}"
            )
    elif trigger.startswith("n="):
        try:
            nth = int(trigger[2:])
        except ValueError:
            raise FaultSpecError(f"bad call index in {clause!r}") from None
        if nth < 1:
            raise FaultSpecError(f"call index must be >= 1, got {nth}")
    else:
        raise FaultSpecError(
            f"trigger must be p=<float>, n=<int> or always, got {trigger!r}"
        )

    mode = "error"
    hang_seconds = 0.0
    if len(parts) == 3:
        mode_part = parts[2]
        if mode_part.startswith("hang="):
            mode = "hang"
            try:
                hang_seconds = float(mode_part[5:])
            except ValueError:
                raise FaultSpecError(
                    f"bad hang duration in {clause!r}"
                ) from None
            if hang_seconds <= 0:
                raise FaultSpecError(
                    f"hang duration must be positive, got {hang_seconds}"
                )
        elif mode_part in _MODES and mode_part != "hang":
            mode = mode_part
        else:
            raise FaultSpecError(
                f"mode must be error, corrupt or hang=<seconds>, "
                f"got {mode_part!r}"
            )
    return FaultRule(
        site=site,
        probability=probability,
        nth=nth,
        always=always,
        mode=mode,
        hang_seconds=hang_seconds,
    )


class FaultPlan:
    """A parsed, armed fault spec with per-site deterministic state."""

    def __init__(self, rules: list[FaultRule], seed: int = 0) -> None:
        by_site: dict[str, FaultRule] = {}
        for rule in rules:
            if rule.site in by_site:
                raise FaultSpecError(
                    f"site {rule.site!r} armed twice in one plan"
                )
            by_site[rule.site] = rule
        self.seed = seed
        self.rules = by_site
        self._lock = threading.Lock()
        # Per-site RNG keyed off a string seed: deterministic across
        # runs and independent of how other sites are exercised.
        self._rng = {
            site: random.Random(f"{seed}:{site}") for site in by_site
        }
        self._calls = {site: 0 for site in by_site}

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a spec string; raises :class:`FaultSpecError`."""
        seed = 0
        rules: list[FaultRule] = []
        for raw in spec.split(";"):
            clause = raw.strip()
            if not clause:
                continue
            if clause.startswith("seed="):
                try:
                    seed = int(clause[5:])
                except ValueError:
                    raise FaultSpecError(
                        f"bad seed in {clause!r}"
                    ) from None
                continue
            rules.append(_parse_clause(clause))
        if not rules:
            raise FaultSpecError(
                f"fault spec {spec!r} arms no sites"
            )
        return cls(rules, seed=seed)

    def should_fire(self, site: str) -> FaultRule | None:
        """Advance the site's counter and decide; None means pass through."""
        rule = self.rules.get(site)
        if rule is None:
            return None
        with self._lock:
            self._calls[site] += 1
            count = self._calls[site]
            if rule.always:
                fired = True
            elif rule.nth is not None:
                fired = count == rule.nth
            else:
                fired = self._rng[site].random() < (rule.probability or 0.0)
        return rule if fired else None

    def calls(self, site: str) -> int:
        with self._lock:
            return self._calls.get(site, 0)

    def __repr__(self) -> str:
        armed = ", ".join(sorted(self.rules))
        return f"FaultPlan(seed={self.seed}, sites=[{armed}])"


# The installed plan.  None in production: check()/mangle() then cost
# one global load and one comparison.
_PLAN: FaultPlan | None = None


def install_faults(plan: FaultPlan) -> None:
    """Arm ``plan`` process-wide (replaces any previous plan)."""
    global _PLAN
    _PLAN = plan


def uninstall_faults() -> None:
    """Disarm fault injection entirely."""
    global _PLAN
    _PLAN = None


def active() -> bool:
    """True when a plan is installed (lets callers skip mangle work)."""
    return _PLAN is not None


def _fire(rule: FaultRule) -> None:
    obs.inc("faults.injected", site=rule.site, mode=rule.mode)
    if rule.mode == "hang":
        time.sleep(rule.hang_seconds)
        return
    raise FaultError(rule.site)


def check(site: str) -> None:
    """Maybe inject at ``site``: no-op unless a plan arms it and fires.

    ``error`` raises :class:`FaultError`; ``hang`` sleeps then returns;
    ``corrupt`` is treated as ``error`` here because a pure checkpoint
    has no payload to corrupt — use :func:`mangle` at data sites.
    """
    plan = _PLAN
    if plan is None:
        return
    rule = plan.should_fire(site)
    if rule is None:
        return
    if rule.mode == "corrupt":
        obs.inc("faults.injected", site=site, mode=rule.mode)
        raise FaultError(site)
    _fire(rule)


def mangle(site: str, text: str) -> str:
    """Maybe corrupt a payload read/written at ``site``.

    ``corrupt`` mode returns the text truncated to half length (a torn
    write); ``error`` raises; ``hang`` sleeps then passes the payload
    through unchanged.
    """
    plan = _PLAN
    if plan is None:
        return text
    rule = plan.should_fire(site)
    if rule is None:
        return text
    if rule.mode == "corrupt":
        obs.inc("faults.injected", site=site, mode=rule.mode)
        return text[: len(text) // 2]
    _fire(rule)
    return text


@contextmanager
def injected_faults(plan: FaultPlan | str) -> Iterator[FaultPlan]:
    """Install a plan (or spec string) for a block; restore on exit.

    The test-suite entry point: guarantees a chaos test can never leak
    an armed plan into the next test.
    """
    global _PLAN
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    previous = _PLAN
    install_faults(plan)
    try:
        yield plan
    finally:
        _PLAN = previous
