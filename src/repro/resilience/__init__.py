"""``repro.resilience`` — the cross-cutting degrade-gracefully layer.

Three cooperating pieces, each usable on its own:

* :mod:`.deadline` — cooperative end-to-end deadlines.  A client budget
  (the ``X-Deadline-Ms`` header) becomes a :class:`Deadline` the server
  activates thread-locally for the request; the engine checks it at
  columnar chunk boundaries, the job manager at shard boundaries and
  the coalescer while waiting on another request's flight, so a sweep
  that cannot finish in budget stops early with a structured
  :class:`DeadlineExceeded` (mapped to a 504 with partial-progress
  info) instead of burning a worker to deliver an answer nobody is
  waiting for.

* :mod:`.admission` — bounded admission in front of the worker pool.
  :class:`AdmissionController` sheds requests with a structured
  :class:`AdmissionRejected` (429 queue-full / 503 cost-budget, both
  carrying ``Retry-After``) once concurrent admissions or estimated
  sweep cost exceed budget, so an overloaded server answers fast
  instead of queueing work it cannot finish.

* :mod:`.faults` — a deterministic, seedable fault-injection harness.
  A :class:`FaultPlan` (parsed from ``REPRO_FAULTS`` or
  ``repro serve --faults``) arms probability- or nth-call faults on
  named sites (``cache.read``, ``cache.write``, ``shard.run``,
  ``http.response``, ``store.write``); with no plan installed every
  site is a single global-load-and-return, so production pays nothing.

The package is stdlib-only and imports nothing from the engine or
service layers — those layers import *it*, never the reverse.
"""

from __future__ import annotations

from .admission import AdmissionController, AdmissionRejected
from .deadline import (
    DEADLINE_HEADER,
    Deadline,
    DeadlineExceeded,
    active_deadline,
    checkpoint,
    current_deadline,
)
from .faults import (
    FAULTS_ENV,
    FAULT_SITES,
    FaultError,
    FaultPlan,
    FaultRule,
    FaultSpecError,
    injected_faults,
    install_faults,
    uninstall_faults,
)

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "DEADLINE_HEADER",
    "Deadline",
    "DeadlineExceeded",
    "FAULTS_ENV",
    "FAULT_SITES",
    "FaultError",
    "FaultPlan",
    "FaultRule",
    "FaultSpecError",
    "active_deadline",
    "checkpoint",
    "current_deadline",
    "injected_faults",
    "install_faults",
    "uninstall_faults",
]
