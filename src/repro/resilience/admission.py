"""Bounded admission in front of the service's worker pool.

An overloaded server has exactly one good answer: a fast, structured
"not now" with a hint of when to come back.  Queueing unbounded work
behind a busy pool converts overload into timeouts for *everyone*;
:class:`AdmissionController` converts it into 429/503 + ``Retry-After``
for the marginal request while admitted work finishes undisturbed.

Two budgets, both optional:

* **depth** — at most ``limit`` requests admitted concurrently
  (running + waiting for a worker slot).  The ``limit + 1``-th request
  is shed with status 429 (``queue-full``).
* **cost** — when ``max_points`` is set, the sum of the admitted
  requests' estimated sweep sizes may not exceed it.  A request that
  would blow the budget while others are in flight is shed with status
  503 (``cost-budget``).  An idle server always admits, whatever the
  cost — a single huge sweep must stay *possible*, just not stackable.

Shed/accept counters land in :mod:`repro.obs` (``admission.accepted``,
``admission.shed`` labelled by reason) and :meth:`snapshot` feeds the
health payload and scrape-time gauges.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator

from .. import obs

__all__ = ["AdmissionController", "AdmissionRejected"]


class AdmissionRejected(RuntimeError):
    """A request was shed at admission; carries the HTTP contract."""

    def __init__(
        self,
        message: str,
        status: int,
        reason: str,
        retry_after: float,
        depth: int,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.reason = reason
        self.retry_after = retry_after
        self.depth = depth


class AdmissionController:
    """Depth- and cost-bounded admission gate (a context manager per try).

    ``limit`` counts concurrently admitted requests; ``max_points``
    (optional) bounds their summed estimated cost; ``retry_after`` is
    the hint (seconds) shed responses carry.
    """

    def __init__(
        self,
        limit: int,
        max_points: int | None = None,
        retry_after: float = 1.0,
    ) -> None:
        if limit < 1:
            raise ValueError(f"admission limit must be >= 1, got {limit}")
        if max_points is not None and max_points < 1:
            raise ValueError(
                f"max_points must be >= 1 or None, got {max_points}"
            )
        if retry_after <= 0:
            raise ValueError(
                f"retry_after must be positive, got {retry_after}"
            )
        self.limit = limit
        self.max_points = max_points
        self.retry_after = retry_after
        self._lock = threading.Lock()
        self._admitted = 0
        self._points = 0
        self._accepted_total = 0
        self._shed_total = 0

    def _reject_locked(self, reason: str, status: int, cost: int) -> None:
        self._shed_total += 1
        obs.inc("admission.shed", reason=reason)
        raise AdmissionRejected(
            f"request shed ({reason}): {self._admitted} admitted"
            + (f", {self._points}+{cost} points" if reason == "cost-budget" else "")
            + f"; retry after {self.retry_after:g}s",
            status=status,
            reason=reason,
            retry_after=self.retry_after,
            depth=self._admitted,
        )

    @contextmanager
    def admit(self, cost: int = 0) -> Iterator[None]:
        """Admit this request for its whole run, or shed it right now.

        Raises :class:`AdmissionRejected` without blocking — admission
        never waits, that is the worker semaphore's job *after* a
        request is admitted.
        """
        with self._lock:
            if self._admitted >= self.limit:
                self._reject_locked("queue-full", 429, cost)
            if (
                self.max_points is not None
                and self._admitted > 0
                and self._points + cost > self.max_points
            ):
                self._reject_locked("cost-budget", 503, cost)
            self._admitted += 1
            self._points += cost
            self._accepted_total += 1
        obs.inc("admission.accepted")
        try:
            yield
        finally:
            with self._lock:
                self._admitted -= 1
                self._points -= cost

    @property
    def depth(self) -> int:
        """Requests currently admitted (running or waiting for a slot)."""
        with self._lock:
            return self._admitted

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "limit": self.limit,
                "max_points": self.max_points,
                "depth": self._admitted,
                "points_in_flight": self._points,
                "accepted": self._accepted_total,
                "shed": self._shed_total,
                "retry_after_seconds": self.retry_after,
            }
