"""Builtin catalog population: everything that ships with repro.

``register_builtins`` attaches the paper's entities to a catalog:

* the three ST CMOS09 flavours of Table 2 (``technology``, with their
  short ``LL``/``HS``/``ULL`` labels as aliases);
* the demo architecture summaries the explore scenarios use
  (``architecture``);
* the Section 4 moves (``transform``);
* the six solve paths (``solver``);
* the thirteen Table 1 multiplier factories (``generator``).

It runs lazily — wired as a loader on the default catalog, triggered by
the first read access — so importing :mod:`repro.catalog` alone stays
cheap and free of import cycles.  Existing names are left alone: a user
entry registered before first access is never clobbered by a builtin.
"""

from __future__ import annotations

from .registry import Catalog

__all__ = ["register_builtins"]

_SOURCE_TECH = "repro.core.technology"
_SOURCE_ARCH = "repro.explore.scenario"
_SOURCE_TRANSFORMS = "repro.core.transforms"
_SOURCE_SOLVERS = "repro.solvers"
_SOURCE_GENERATORS = "repro.generators.registry"

#: Short human labels for the Table 2 flavours (alias → summary).
_TECHNOLOGY_SUMMARIES = {
    "ULL": "ST CMOS09 ultra low leakage flavour (Table 2, top row)",
    "LL": "ST CMOS09 low leakage flavour (Table 2, middle row; the default)",
    "HS": "ST CMOS09 high speed flavour (Table 2, bottom row)",
}


def _first_doc_line(obj) -> str:
    doc = (getattr(obj, "__doc__", "") or "").strip()
    return doc.splitlines()[0] if doc else ""


def _register(namespace, name, value, aliases=(), **metadata) -> None:
    """Register one builtin, never disturbing earlier user entries.

    A claimed name skips the whole entry; a claimed alias is dropped
    from the builtin registration (the entry itself still lands) —
    population must never raise, or the catalog's lazy load would fail
    on first read.
    """
    if name in namespace:
        return
    free_aliases = tuple(a for a in aliases if a not in namespace)
    namespace.register(
        name, value, provenance="builtin", aliases=free_aliases, **metadata
    )


def register_builtins(catalog: Catalog) -> None:
    """Populate every namespace of ``catalog`` with the shipped entities."""
    _register_technologies(catalog)
    _register_architectures(catalog)
    _register_transforms(catalog)
    _register_solvers(catalog)
    _register_generators(catalog)


def _register_technologies(catalog: Catalog) -> None:
    from ..core.technology import ST_CMOS09_FLAVOURS

    namespace = catalog.technologies
    for label, tech in ST_CMOS09_FLAVOURS.items():
        _register(
            namespace,
            tech.name,
            tech,
            summary=_TECHNOLOGY_SUMMARIES.get(label, ""),
            source=_SOURCE_TECH,
            aliases=(label,),
        )


def _register_architectures(catalog: Catalog) -> None:
    from ..explore.scenario import _DEMO_ARCHITECTURES

    namespace = catalog.architectures
    for arch in _DEMO_ARCHITECTURES:
        _register(
            namespace,
            arch.name,
            arch,
            summary=arch.describe(),
            source=_SOURCE_ARCH,
        )


def _register_transforms(catalog: Catalog) -> None:
    from ..core.transforms import parallelize, pipeline, sequentialize

    namespace = catalog.transforms
    for op, applier in (
        ("parallelize", parallelize),
        ("pipeline", pipeline),
        ("sequentialize", sequentialize),
    ):
        _register(
            namespace,
            op,
            applier,
            summary=_first_doc_line(applier),
            source=_SOURCE_TRANSFORMS,
        )


def _register_solvers(catalog: Catalog) -> None:
    from ..solvers import (
        AUTO_SOLVER,
        BOUNDED_SOLVER,
        CLOSED_FORM_SOLVER,
        LINEARIZED_SOLVER,
        NUMERICAL_SCALAR_SOLVER,
        NUMERICAL_SOLVER,
        VECTORIZED_SOLVER,
    )

    namespace = catalog.solvers
    for solver in (
        CLOSED_FORM_SOLVER,
        LINEARIZED_SOLVER,
        NUMERICAL_SOLVER,
        NUMERICAL_SCALAR_SOLVER,
        VECTORIZED_SOLVER,
        BOUNDED_SOLVER,
        AUTO_SOLVER,
    ):
        _register(
            namespace,
            solver.name,
            solver,
            summary=getattr(solver, "summary", ""),
            source=_SOURCE_SOLVERS,
        )

    # The learned surrogate lives in its own subsystem; importing it here
    # (not in repro.solvers) keeps the solvers ⇄ catalog graph acyclic.
    from ..surrogate.solver import SURROGATE_SOLVER

    _register(
        namespace,
        SURROGATE_SOLVER.name,
        SURROGATE_SOLVER,
        summary=SURROGATE_SOLVER.summary,
        source="repro.surrogate",
    )


def _register_generators(catalog: Catalog) -> None:
    from functools import partial

    from ..generators.registry import MULTIPLIER_FACTORIES

    namespace = catalog.generators
    for name, factory in MULTIPLIER_FACTORIES.items():
        target = factory.func if isinstance(factory, partial) else factory
        _register(
            namespace,
            name,
            factory,
            summary=_first_doc_line(target),
            source=_SOURCE_GENERATORS,
        )
