"""The generic namespaced registry under the whole model catalog.

One :class:`Catalog` holds five :class:`Namespace` maps — ``technology``,
``architecture``, ``solver``, ``transform`` and ``generator`` — with one
shared contract:

* **one normaliser** — lookups fold case, ``-``/``_`` and whitespace, so
  ``"ST-CMOS09-LL"``, ``"st_cmos09_ll"`` and ``"ST CMOS09 LL"`` name the
  same entry (the rule the solver registry has always applied, now
  applied everywhere);
* **provenance** — every entry records whether it is ``builtin`` (ships
  with repro), ``user`` (registered programmatically) or ``file``
  (loaded from a plugin pack), plus a ``source`` string saying where;
* **did-you-mean errors** — a miss raises :class:`CatalogKeyError`
  listing the known names and the closest matches;
* **aliases** — short labels (the Table 2 ``LL``/``HS``/``ULL``) resolve
  to the same entry as the full name.

The module is dependency-free (stdlib only) so every other repro layer
can import it without cycles; the builtin entries are attached to the
process-wide :data:`DEFAULT_CATALOG` by a lazy loader (see
:mod:`repro.catalog.builtin`) the first time any namespace is read.
"""

from __future__ import annotations

import difflib
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = [
    "Catalog",
    "CatalogEntry",
    "CatalogKeyError",
    "NAMESPACES",
    "Namespace",
    "PROVENANCES",
    "default_catalog",
    "normalise_name",
]

#: The five entity kinds the catalog manages.
NAMESPACES = ("technology", "architecture", "solver", "transform", "generator")

#: Where an entry can come from.
PROVENANCES = ("builtin", "user", "file")

_SEPARATORS = set("-_ \t")


def normalise_name(name: str) -> str:
    """The one canonical key: case-folded, ``-``/``_``/space-folded.

    Runs of separators collapse to a single ``_`` so ``"RCA  hor.pipe2"``
    and ``"rca-hor.pipe2"`` agree.  Raises :class:`ValueError` on empty
    or non-string names — an unaddressable entry is always a bug.
    """
    if not isinstance(name, str):
        raise ValueError(f"catalog names must be strings, got {name!r}")
    pieces: list[str] = []
    pending_separator = False
    for char in name.strip().lower():
        if char in _SEPARATORS:
            pending_separator = True
            continue
        if pending_separator and pieces:
            pieces.append("_")
        pending_separator = False
        pieces.append(char)
    key = "".join(pieces)
    if not key:
        raise ValueError(f"catalog names must be non-empty, got {name!r}")
    return key


class CatalogKeyError(KeyError):
    """A lookup miss, with the known names and did-you-mean suggestions.

    ``str()`` is the human message (plain :class:`KeyError` would repr-
    quote it); the structured parts stay addressable as attributes for
    callers that re-phrase the error (CLI, HTTP 4xx bodies).
    """

    def __init__(
        self,
        namespace: str,
        name: str,
        known: tuple[str, ...],
        suggestions: tuple[str, ...] = (),
    ) -> None:
        message = (
            f"unknown {namespace} {name!r}; "
            f"known: {', '.join(known) if known else '(none registered)'}"
        )
        if suggestions:
            quoted = " or ".join(repr(s) for s in suggestions)
            message += f" — did you mean {quoted}?"
        super().__init__(message)
        self.namespace = namespace
        self.name = name
        self.known = known
        self.suggestions = suggestions

    def __str__(self) -> str:
        return self.args[0]


@dataclass(frozen=True)
class CatalogEntry:
    """One named entity: the value plus its addressing/provenance metadata."""

    namespace: str
    name: str
    value: Any
    summary: str = ""
    provenance: str = "user"
    source: str = ""
    aliases: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.namespace not in NAMESPACES:
            raise ValueError(
                f"unknown namespace {self.namespace!r}; known: "
                f"{', '.join(NAMESPACES)}"
            )
        if self.provenance not in PROVENANCES:
            raise ValueError(
                f"unknown provenance {self.provenance!r}; known: "
                f"{', '.join(PROVENANCES)}"
            )

    @property
    def key(self) -> str:
        """The normalised registry key of :attr:`name`."""
        return normalise_name(self.name)

    def describe(self) -> str:
        """One-line human summary for listings."""
        origin = self.provenance + (f" ({self.source})" if self.source else "")
        text = f"{self.name} [{origin}]"
        return f"{text}: {self.summary}" if self.summary else text

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready metadata (see serialization for value payloads)."""
        from .serialization import VALUE_NAMESPACES, entity_to_dict

        payload: dict[str, Any] = {
            "name": self.name,
            "namespace": self.namespace,
            "summary": self.summary,
            "provenance": self.provenance,
            "source": self.source,
            "aliases": list(self.aliases),
        }
        if self.namespace in VALUE_NAMESPACES:
            payload["value"] = entity_to_dict(self.namespace, self.value)
        else:
            # Code entities reference themselves by catalog name — the
            # value object may be anonymous (e.g. a functools.partial).
            payload["value"] = {"$ref": self.name}
        return payload


class Namespace:
    """One name → :class:`CatalogEntry` map with normalised keys.

    Thread-safe: registration and lookup may race freely (the service
    handler threads read while a pack load writes).
    """

    def __init__(self, kind: str, catalog: "Catalog | None" = None) -> None:
        if kind not in NAMESPACES:
            raise ValueError(
                f"unknown namespace {kind!r}; known: {', '.join(NAMESPACES)}"
            )
        self.kind = kind
        self._catalog = catalog
        self._entries: dict[str, CatalogEntry] = {}
        self._aliases: dict[str, str] = {}
        self._lock = threading.RLock()

    # -- writes (never trigger the lazy builtin loader) ----------------------
    def register(
        self,
        name: str,
        value: Any,
        *,
        summary: str = "",
        provenance: str = "user",
        source: str = "",
        aliases: tuple[str, ...] | list[str] = (),
        overwrite: bool = False,
    ) -> CatalogEntry:
        """Add an entry; returns it for chaining.

        A taken name raises unless ``overwrite=True`` — with one
        exception: re-registering the *same* source with an equal value
        is an idempotent no-op, so reloading a pack file never trips on
        itself.
        """
        if isinstance(aliases, str):
            # tuple("FDX28") would silently explode into per-character
            # aliases — an easy authoring mistake that must fail loud.
            raise ValueError(
                f"aliases must be a list/tuple of names, got the string "
                f"{aliases!r}"
            )
        entry = CatalogEntry(
            namespace=self.kind,
            name=name,
            value=value,
            summary=summary,
            provenance=provenance,
            source=source,
            aliases=tuple(aliases),
        )
        with self._lock:
            key = entry.key
            # Validate everything before mutating anything: a rejected
            # registration must leave the namespace exactly as it was.
            existing = self._entries.get(key)
            if existing is not None and not overwrite:
                same_origin = (
                    existing.source == entry.source
                    and existing.provenance == entry.provenance
                    and existing.value == entry.value
                )
                if not same_origin:
                    raise ValueError(
                        f"{self.kind} name {name!r} is already registered "
                        f"({existing.describe()}); pass overwrite=True to "
                        f"replace it"
                    )
            alias_keys = [normalise_name(alias) for alias in entry.aliases]
            if not overwrite:
                for alias, alias_key in zip(entry.aliases, alias_keys):
                    owner = self._aliases.get(alias_key)
                    if (alias_key in self._entries and alias_key != key) or (
                        owner is not None and owner != key
                    ):
                        raise ValueError(
                            f"{self.kind} alias {alias!r} collides with an "
                            f"existing entry; pass overwrite=True to "
                            f"replace it"
                        )
            self._remove_aliases(key)
            self._entries[key] = entry
            for alias_key in alias_keys:
                self._aliases[alias_key] = key
        return entry

    def _remove_aliases(self, key: str) -> None:
        for alias_key in [a for a, k in self._aliases.items() if k == key]:
            del self._aliases[alias_key]

    def unregister(self, name: str) -> bool:
        """Remove an entry (and its aliases); True when something was removed."""
        with self._lock:
            key = self._resolve_key(name)
            if key is None or key not in self._entries:
                return False
            del self._entries[key]
            self._remove_aliases(key)
            return True

    # -- reads ---------------------------------------------------------------
    def _ensure_loaded(self) -> None:
        if self._catalog is not None:
            self._catalog.ensure_loaded()

    @staticmethod
    def _lookup_key(name: str) -> str | None:
        """Normalise a *lookup* spelling; None for unaddressable names.

        Registration rejects empty/non-string names loudly, but a
        lookup with one (a blank ``--tech ""`` and the like) must read
        as an ordinary miss — callers expect :class:`CatalogKeyError`
        from lookups, never :class:`ValueError`.
        """
        try:
            return normalise_name(name)
        except ValueError:
            return None

    def _resolve_key(self, name: str) -> str | None:
        key = self._lookup_key(name)
        if key is None:
            return None
        if key in self._entries:
            return key
        return self._aliases.get(key)

    def entry(self, name: str) -> CatalogEntry:
        """The full entry for ``name`` (any spelling, alias included)."""
        self._ensure_loaded()
        with self._lock:
            key = self._resolve_key(name)
            if key is not None:
                return self._entries[key]
            known = self._display_names()
            suggestions: tuple[str, ...] = ()
            lookup = self._lookup_key(name)
            if lookup is not None:
                candidates = sorted(set(self._entries) | set(self._aliases))
                close = difflib.get_close_matches(
                    lookup, candidates, n=3, cutoff=0.6
                )
                suggestions = tuple(
                    self._entries[self._aliases.get(match, match)].name
                    for match in close
                )
        raise CatalogKeyError(self.kind, name, tuple(known), suggestions)

    def get(self, name: str) -> Any:
        """The registered value for ``name``.

        The hit path is lock-free (CPython dict reads are atomic, and
        entries are immutable) — this sits under every scenario/study
        name resolution; misses take :meth:`entry`'s slow path for the
        full did-you-mean error.
        """
        self._ensure_loaded()
        key = self._lookup_key(name)
        entry = self._entries.get(key) if key is not None else None
        if entry is None and key is not None:
            alias_owner = self._aliases.get(key)
            if alias_owner is not None:
                entry = self._entries.get(alias_owner)
        if entry is not None:
            return entry.value
        return self.entry(name).value

    def __contains__(self, name: str) -> bool:
        self._ensure_loaded()
        with self._lock:
            return self._resolve_key(name) is not None

    def _display_names(self) -> list[str]:
        return [self._entries[key].name for key in sorted(self._entries)]

    def names(self) -> tuple[str, ...]:
        """Display names of every entry, sorted by normalised key."""
        self._ensure_loaded()
        with self._lock:
            return tuple(self._display_names())

    def entries(self) -> tuple[CatalogEntry, ...]:
        """Every entry, sorted by normalised key."""
        self._ensure_loaded()
        with self._lock:
            return tuple(self._entries[key] for key in sorted(self._entries))

    def summaries(self) -> dict[str, str]:
        """``{normalised name: one-line summary}`` (the listing shape)."""
        self._ensure_loaded()
        with self._lock:
            return {key: self._entries[key].summary for key in sorted(self._entries)}

    def __len__(self) -> int:
        self._ensure_loaded()
        with self._lock:
            return len(self._entries)

    def __iter__(self) -> Iterator[CatalogEntry]:
        return iter(self.entries())


@dataclass
class _CatalogState:
    """Snapshot payload for :meth:`Catalog.snapshot`/:meth:`Catalog.restore`."""

    entries: dict[str, dict[str, CatalogEntry]] = field(default_factory=dict)
    aliases: dict[str, dict[str, str]] = field(default_factory=dict)


class Catalog:
    """Five namespaces plus lazy loaders for the builtin population.

    Loaders (see :meth:`add_loader`) run exactly once, on the first read
    access to any namespace; registration never triggers them, so a
    loader can itself register entries without recursing.
    """

    def __init__(self) -> None:
        self._namespaces = {
            kind: Namespace(kind, catalog=self) for kind in NAMESPACES
        }
        self._loaders: list[Callable[["Catalog"], None]] = []
        self._loaded = False
        self._loading_thread: int | None = None
        self._load_lock = threading.RLock()

    # -- namespaces ----------------------------------------------------------
    def namespace(self, kind: str) -> Namespace:
        try:
            return self._namespaces[kind]
        except KeyError:
            raise ValueError(
                f"unknown namespace {kind!r}; known: {', '.join(NAMESPACES)}"
            ) from None

    @property
    def technologies(self) -> Namespace:
        return self._namespaces["technology"]

    @property
    def architectures(self) -> Namespace:
        return self._namespaces["architecture"]

    @property
    def solvers(self) -> Namespace:
        return self._namespaces["solver"]

    @property
    def transforms(self) -> Namespace:
        return self._namespaces["transform"]

    @property
    def generators(self) -> Namespace:
        return self._namespaces["generator"]

    # -- convenience forwarding ----------------------------------------------
    def register(self, kind: str, name: str, value: Any, **metadata) -> CatalogEntry:
        return self.namespace(kind).register(name, value, **metadata)

    def get(self, kind: str, name: str) -> Any:
        return self.namespace(kind).get(name)

    def entry(self, kind: str, name: str) -> CatalogEntry:
        return self.namespace(kind).entry(name)

    # -- lazy population -----------------------------------------------------
    def add_loader(self, loader: Callable[["Catalog"], None]) -> None:
        """Queue a population hook; re-arms loading if already done."""
        with self._load_lock:
            self._loaders.append(loader)
            self._loaded = False

    def ensure_loaded(self) -> None:
        """Run any pending loaders (re-entrancy safe, failure-retrying).

        Concurrent first reads *block* until the in-progress load
        finishes — only the loading thread itself passes through early
        (a loader registering entries must not recurse).  A loader that
        raises stays queued and its error propagates to the reader —
        the next read retries it rather than silently serving a
        half-populated catalog, so loaders must be idempotent (the
        builtin loader and pack loads both are).
        """
        if self._loaded:
            return
        if self._loading_thread == threading.get_ident():
            return  # re-entrant read from inside a loader
        with self._load_lock:
            if self._loaded:
                return
            self._loading_thread = threading.get_ident()
            try:
                while self._loaders:
                    self._loaders[0](self)
                    self._loaders.pop(0)
                self._loaded = True
            finally:
                self._loading_thread = None

    # -- aggregate views -----------------------------------------------------
    def payload(self) -> dict[str, Any]:
        """The whole catalog, JSON-ready: the ``/v1/catalog`` shape."""
        self.ensure_loaded()
        return {
            kind: {
                entry.key: entry.to_dict()
                for entry in self._namespaces[kind].entries()
            }
            for kind in NAMESPACES
        }

    def describe(self) -> str:
        """One line per namespace with entry counts."""
        self.ensure_loaded()
        return "\n".join(
            f"{kind}: {len(self._namespaces[kind])} entries"
            for kind in NAMESPACES
        )

    # -- test support --------------------------------------------------------
    def snapshot(self) -> _CatalogState:
        """Copy the current entries (for restore after a mutating test)."""
        self.ensure_loaded()
        state = _CatalogState()
        for kind, namespace in self._namespaces.items():
            with namespace._lock:
                state.entries[kind] = dict(namespace._entries)
                state.aliases[kind] = dict(namespace._aliases)
        return state

    def restore(self, state: _CatalogState) -> None:
        """Reset every namespace to a previous :meth:`snapshot`."""
        for kind, namespace in self._namespaces.items():
            with namespace._lock:
                namespace._entries = dict(state.entries.get(kind, {}))
                namespace._aliases = dict(state.aliases.get(kind, {}))


#: The process-wide catalog every repro surface reads; builtin entries
#: and environment packs attach via the loader wired in
#: :mod:`repro.catalog.__init__`.
DEFAULT_CATALOG = Catalog()


def default_catalog() -> Catalog:
    """The process-wide catalog (one shared instance)."""
    return DEFAULT_CATALOG
