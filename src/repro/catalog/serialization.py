"""``to_dict``/``from_dict`` round-trips for every catalog entity.

Two entity families serialise differently:

* **value entities** (``technology``, ``architecture``) are frozen
  dataclasses of plain floats — their payload is the full field dict,
  and ``entity_from_dict`` rebuilds an equal instance from it;
* **code entities** (``solver``, ``transform``, ``generator``) are
  Python callables/objects — their payload is a *reference*
  (``{"$ref": name}``), and ``entity_from_dict`` resolves it back
  through the catalog, so a round-trip returns the registered object
  itself.

Both directions accept a bare string as shorthand for a reference, which
is what lets :class:`~repro.explore.scenario.Scenario` JSON say
``"technologies": ["LL", "my-pack-flavour"]``.
"""

from __future__ import annotations

from dataclasses import asdict, fields, is_dataclass
from functools import lru_cache
from typing import Any, Mapping

from .registry import Catalog, NAMESPACES, default_catalog

__all__ = [
    "REFERENCE_NAMESPACES",
    "VALUE_NAMESPACES",
    "entity_from_dict",
    "entity_to_dict",
]

#: Namespaces whose entries serialise as full field payloads.
VALUE_NAMESPACES = ("technology", "architecture")

#: Namespaces whose entries serialise as by-name references.
REFERENCE_NAMESPACES = ("solver", "transform", "generator")


def _check_namespace(namespace: str) -> None:
    if namespace not in NAMESPACES:
        raise ValueError(
            f"unknown namespace {namespace!r}; known: {', '.join(NAMESPACES)}"
        )


def _dataclass_payload(value: Any) -> dict[str, Any]:
    payload = asdict(value)
    return payload


def entity_to_dict(namespace: str, value: Any) -> dict[str, Any] | None:
    """The JSON payload of one catalog value (None when value-less).

    Value entities yield their full field dict; code entities yield a
    ``{"$ref": name}`` reference when they carry a usable name, else
    ``None`` (metadata-only entries still list fine).
    """
    _check_namespace(namespace)
    if namespace in VALUE_NAMESPACES:
        if is_dataclass(value) and not isinstance(value, type):
            return _dataclass_payload(value)
        if isinstance(value, Mapping):
            return dict(value)
        raise TypeError(
            f"{namespace} entities must be dataclasses or mappings, "
            f"got {value!r}"
        )
    name = getattr(value, "name", None) or getattr(value, "__name__", None)
    if isinstance(name, str) and name:
        return {"$ref": name}
    return None


@lru_cache(maxsize=None)
def _value_class(namespace: str):
    """The dataclass of a value namespace plus its field-name set (cached:
    this sits on the per-request Scenario.from_dict hot path)."""
    if namespace == "technology":
        from ..core.technology import Technology as cls
    else:
        from ..core.architecture import ArchitectureParameters as cls
    return cls, frozenset(f.name for f in fields(cls))


def _value_from_payload(
    namespace: str, payload: Mapping[str, Any], strict: bool = False
) -> Any:
    """Rebuild a value entity from its field payload.

    Unknown keys are dropped by default (the historical Scenario-JSON
    leniency); ``strict=True`` rejects them — a typo'd pack field must
    not silently fall back to the dataclass default.
    """
    cls, known = _value_class(namespace)
    if strict:
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown {namespace} field(s) {sorted(unknown)}; "
                f"known: {', '.join(sorted(known))}"
            )
    return cls(**{key: val for key, val in payload.items() if key in known})


def entity_from_dict(
    namespace: str,
    payload: Any,
    catalog: Catalog | None = None,
    strict: bool = False,
) -> Any:
    """Rebuild/resolve one catalog entity from its JSON payload.

    Accepts, for every namespace: a bare string (catalog lookup by any
    spelling) or a ``{"$ref": name}`` reference.  Value namespaces
    additionally accept the full field payload, which constructs a fresh
    instance without touching the catalog; ``strict=True`` rejects
    unknown field keys there (the pack loader's fail-loud mode).
    """
    _check_namespace(namespace)
    catalog = catalog or default_catalog()
    if isinstance(payload, str):
        return catalog.get(namespace, payload)
    if isinstance(payload, Mapping):
        if "$ref" in payload:
            return catalog.get(namespace, payload["$ref"])
        if namespace in VALUE_NAMESPACES:
            return _value_from_payload(namespace, payload, strict=strict)
        raise TypeError(
            f"{namespace} payloads must be names or {{'$ref': name}} "
            f"references, got {dict(payload)!r}"
        )
    raise TypeError(
        f"cannot rebuild a {namespace} entity from {payload!r}"
    )
