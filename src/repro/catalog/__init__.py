"""The unified model catalog: one registry API for every repro entity.

Five namespaces — ``technology``, ``architecture``, ``solver``,
``transform``, ``generator`` — behind one :class:`Catalog` with uniform
name normalisation, provenance metadata, did-you-mean lookup errors and
``to_dict``/``from_dict`` round-trips (:mod:`~repro.catalog.serialization`).
The historical registries (:mod:`repro.solvers.registry`,
:mod:`repro.generators.registry`) are thin wrappers over it, and
:class:`~repro.study.Study` / :class:`~repro.explore.scenario.Scenario`
accept bare catalog names anywhere they accept objects.

Quick tour::

    from repro.catalog import default_catalog, load_pack

    catalog = default_catalog()
    catalog.get("technology", "ll")           # alias → ST_CMOS09_LL
    catalog.get("architecture", "rca16")      # demo summary by name
    load_pack("my_foundry.json")              # user flavours, by file
    catalog.technologies.names()              # builtin + pack entries

User extension goes two ways: programmatically
(``catalog.register("technology", name, tech)``) or declaratively via
plugin packs — JSON/TOML files picked up from ``--packs`` paths,
``$REPRO_PACKS`` and a ``repro.d/`` directory (see
:mod:`~repro.catalog.packs`).

The process-wide :data:`~repro.catalog.registry.DEFAULT_CATALOG`
populates lazily on first read: builtins first (never clobbering user
entries registered earlier), then any environment packs.
"""

from __future__ import annotations

from .builtin import register_builtins
from .packs import (
    PACK_DIR_NAME,
    PACK_ENV_VAR,
    PackError,
    PackReport,
    discover_pack_files,
    install_packs,
    load_pack,
)
from .registry import (
    Catalog,
    CatalogEntry,
    CatalogKeyError,
    NAMESPACES,
    Namespace,
    default_catalog,
    normalise_name,
)
from .serialization import entity_from_dict, entity_to_dict

__all__ = [
    "Catalog",
    "CatalogEntry",
    "CatalogKeyError",
    "NAMESPACES",
    "Namespace",
    "PACK_DIR_NAME",
    "PACK_ENV_VAR",
    "PackError",
    "PackReport",
    "default_catalog",
    "discover_pack_files",
    "entity_from_dict",
    "entity_to_dict",
    "install_packs",
    "load_pack",
    "normalise_name",
    "register_builtins",
]


def _load_default(catalog: Catalog) -> None:
    """Default-catalog loader: builtins, then environment packs."""
    register_builtins(catalog)
    install_packs((), catalog=catalog)


default_catalog().add_loader(_load_default)
