"""User-defined plugin packs: catalog entries from JSON/TOML files.

A *pack* is a small declarative file adding technologies and/or
architectures to the catalog without touching repro source::

    {
      "name": "my-foundry",
      "description": "28nm planning numbers",
      "technologies": [
        {"name": "FDX28-LP", "io": 1.1e-6, "zeta": 4.2e-12,
         "alpha": 1.7, "n": 1.35, "vdd_nominal": 1.0,
         "vth0_nominal": 0.42, "summary": "28nm FD-SOI low power",
         "aliases": ["FDX28"]}
      ],
      "architectures": [
        {"name": "dsp-mac32", "n_cells": 4100, "activity": 0.21,
         "logical_depth": 34, "capacitance": 55e-15}
      ]
    }

or the TOML equivalent (``[[technologies]]`` / ``[[architectures]]``
tables, Python >= 3.11 where stdlib ``tomllib`` exists).

Packs are found three ways, all additive:

* explicit paths — the ``--packs`` CLI flag / ``paths=`` argument
  (a path may be a single file or a directory of pack files);
* the ``$REPRO_PACKS`` environment variable (``os.pathsep``-separated
  paths, same file-or-directory rule);
* a ``repro.d/`` directory in the current working directory.

Entries register with provenance ``"file"`` and their source path, so
listings always show where a flavour came from.  Loading the same file
twice is idempotent; two *different* sources fighting over one name is
an error (pass ``overwrite=True`` to take sides).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from .registry import Catalog, default_catalog
from .serialization import entity_from_dict

__all__ = [
    "PACK_DIR_NAME",
    "PACK_ENV_VAR",
    "PACK_SUFFIXES",
    "PackError",
    "PackReport",
    "discover_pack_files",
    "install_packs",
    "load_pack",
    "parse_pack",
]

#: Environment variable listing pack files/directories (os.pathsep-separated).
PACK_ENV_VAR = "REPRO_PACKS"

#: Conventional drop-in directory scanned in the current working directory.
PACK_DIR_NAME = "repro.d"

#: File suffixes recognised as pack files.
PACK_SUFFIXES = (".json", ".toml")

#: Pack sections → catalog namespaces.
_SECTIONS = {"technologies": "technology", "architectures": "architecture"}

#: Per-entry keys that are catalog metadata, not entity fields.
_METADATA_KEYS = ("summary", "aliases")

_TOP_LEVEL_KEYS = {"name", "description", *_SECTIONS}


class PackError(ValueError):
    """A malformed or unloadable pack file (message carries the path)."""


@dataclass
class PackReport:
    """What one :func:`load_pack` call registered."""

    path: Path
    name: str
    description: str = ""
    entries: list[tuple[str, str]] = field(default_factory=list)

    @property
    def counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for namespace, _ in self.entries:
            counts[namespace] = counts.get(namespace, 0) + 1
        return counts

    def describe(self) -> str:
        total = len(self.entries)
        parts = ", ".join(
            f"{count} {namespace}" for namespace, count in self.counts.items()
        )
        return f"pack {self.name!r} ({self.path}): {total} entries ({parts})"


def _parse_toml(raw: bytes, path: Path) -> Mapping[str, Any]:
    try:
        import tomllib
    except ImportError:  # pragma: no cover - Python < 3.11 only
        raise PackError(
            f"cannot load {path}: TOML packs need Python >= 3.11 "
            f"(stdlib tomllib); rewrite the pack as JSON"
        ) from None
    try:
        return tomllib.loads(raw.decode("utf-8"))
    except (tomllib.TOMLDecodeError, UnicodeDecodeError) as error:
        raise PackError(f"cannot parse {path}: {error}") from None


def parse_pack(path: str | Path) -> Mapping[str, Any]:
    """Read and validate one pack file into its raw mapping."""
    path = Path(path)
    if path.suffix.lower() not in PACK_SUFFIXES:
        raise PackError(
            f"cannot load {path}: pack files must end in "
            f"{' or '.join(PACK_SUFFIXES)}"
        )
    try:
        raw = path.read_bytes()
    except OSError as error:
        raise PackError(f"cannot read pack {path}: {error}") from None
    if path.suffix.lower() == ".toml":
        payload = _parse_toml(raw, path)
    else:
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise PackError(f"cannot parse {path}: {error}") from None
    if not isinstance(payload, Mapping):
        raise PackError(f"pack {path} must be a JSON/TOML object at top level")
    unknown = set(payload) - _TOP_LEVEL_KEYS
    if unknown:
        raise PackError(
            f"pack {path} has unknown top-level keys "
            f"{sorted(unknown)}; expected {sorted(_TOP_LEVEL_KEYS)}"
        )
    for section in _SECTIONS:
        entries = payload.get(section, [])
        if not isinstance(entries, (list, tuple)):
            raise PackError(f"pack {path}: {section!r} must be a list")
    return payload


def load_pack(
    path: str | Path,
    catalog: Catalog | None = None,
    overwrite: bool = False,
) -> PackReport:
    """Register every entity of one pack file; returns a report.

    Entries validate through the real dataclass constructors, so a
    nonsense flavour (``io <= 0``, ``alpha`` out of range, …) fails the
    load with the constructor's message and the file path.
    """
    path = Path(path)
    catalog = catalog or default_catalog()
    payload = parse_pack(path)
    report = PackReport(
        path=path,
        name=str(payload.get("name", path.stem)),
        description=str(payload.get("description", "")),
    )
    for section, namespace in _SECTIONS.items():
        for index, spec in enumerate(payload.get(section, [])):
            if not isinstance(spec, Mapping):
                raise PackError(
                    f"pack {path}: {section}[{index}] must be an object, "
                    f"got {spec!r}"
                )
            fields_payload = {
                key: value
                for key, value in spec.items()
                if key not in _METADATA_KEYS
            }
            aliases = spec.get("aliases", [])
            if isinstance(aliases, str) or not isinstance(
                aliases, (list, tuple)
            ):
                raise PackError(
                    f"pack {path}: {section}[{index}] 'aliases' must be a "
                    f"list of names, got {aliases!r}"
                )
            try:
                value = entity_from_dict(
                    namespace, fields_payload, catalog, strict=True
                )
                name = getattr(value, "name", "") or str(spec.get("name", ""))
                catalog.namespace(namespace).register(
                    name,
                    value,
                    summary=str(spec.get("summary", "")),
                    provenance="file",
                    source=str(path),
                    aliases=tuple(aliases),
                    overwrite=overwrite,
                )
            except (TypeError, ValueError) as error:
                raise PackError(
                    f"pack {path}: invalid {section}[{index}]: {error}"
                ) from None
            report.entries.append((namespace, name))
    return report


def _expand(path: Path) -> list[Path]:
    """A path spec → concrete pack files (a directory yields its packs)."""
    if path.is_dir():
        return sorted(
            child
            for child in path.iterdir()
            if child.is_file() and child.suffix.lower() in PACK_SUFFIXES
        )
    return [path]


def discover_pack_files(
    paths: tuple[str | Path, ...] | list[str | Path] = (),
    environ: Mapping[str, str] | None = None,
    cwd: str | Path | None = None,
) -> list[Path]:
    """Every pack file from explicit paths, ``$REPRO_PACKS`` and ``repro.d/``.

    Explicit paths must exist (a typo'd ``--packs`` should fail loud);
    environment and drop-in-directory sources are skipped silently when
    absent.  Duplicates (same resolved file) collapse to one load, first
    occurrence wins the ordering.
    """
    environ = os.environ if environ is None else environ
    candidates: list[tuple[Path, bool]] = []
    for spec in paths:
        candidates.append((Path(spec), True))
    for spec in environ.get(PACK_ENV_VAR, "").split(os.pathsep):
        if spec.strip():
            candidates.append((Path(spec.strip()), False))
    candidates.append((Path(cwd or ".") / PACK_DIR_NAME, False))

    found: list[Path] = []
    seen: set[Path] = set()
    for path, required in candidates:
        if not path.exists():
            if required:
                raise PackError(f"pack path {path} does not exist")
            continue
        for file in _expand(path):
            resolved = file.resolve()
            if resolved not in seen:
                seen.add(resolved)
                found.append(file)
    return found


def install_packs(
    paths: tuple[str | Path, ...] | list[str | Path] = (),
    catalog: Catalog | None = None,
    environ: Mapping[str, str] | None = None,
    cwd: str | Path | None = None,
    overwrite: bool = False,
) -> list[PackReport]:
    """Discover and load every pack (the CLI/service entry point)."""
    catalog = catalog or default_catalog()
    return [
        load_pack(file, catalog=catalog, overwrite=overwrite)
        for file in discover_pack_files(paths, environ=environ, cwd=cwd)
    ]
