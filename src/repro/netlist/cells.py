"""Standard-cell library for the netlist substrate.

The paper synthesised its multipliers onto ST's CMOS09 library; we replace
that with a small in-house library whose per-cell electrical figures are
derived from transistor counts, normalised to the inverter (DESIGN.md, S6):

* ``leak_units``   — average off-current relative to the inverter
  (≈ transistor count / 2, since the inverter has two devices);
* ``cap_units``    — equivalent switched capacitance relative to the
  inverter (same normalisation: gate + drain area scales with devices);
* ``delay_units``  — pin-to-output delay in inverter-delay equivalents,
  per output (a mirror full-adder's carry output is famously faster than
  its sum output, which is what shapes array-multiplier critical paths);
* ``area_um2``     — layout area, ``AREA_PER_TRANSISTOR`` per device
  (calibrated so a 608-cell RCA multiplier lands near Table 1's
  11 038 µm²).

Logic functions operate on integers 0/1 and return a tuple with one entry
per output, so multi-output cells (HA, FA) are first-class citizens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

#: Layout area per transistor [µm²]; see module docstring for calibration.
AREA_PER_TRANSISTOR = 1.05

#: Inverter-equivalent switched capacitance [F].  Chosen so the average
#: multiplier cell (full-adder dominated, ~14 cap units) carries ~70 fF,
#: the value the Table 1 calibration recovers (DESIGN.md).
CAP_PER_UNIT = 5.0e-15


@dataclass(frozen=True)
class CellType:
    """One library cell.

    Attributes
    ----------
    name:
        Library name (``"FA"``, ``"NAND2"``...).
    n_inputs / n_outputs:
        Pin counts (data pins only; the DFF clock is implicit).
    transistors:
        Device count, the basis of leak/cap/area figures.
    delay_units:
        Per-output delay in inverter equivalents (tuple, one per output).
    logic:
        ``f(inputs) -> outputs`` on 0/1 integers; None for state elements
        (DFF family), whose behaviour the simulator implements.
    sequential:
        True for clocked cells.
    """

    name: str
    n_inputs: int
    n_outputs: int
    transistors: int
    delay_units: tuple[float, ...]
    logic: Callable[[tuple[int, ...]], tuple[int, ...]] | None
    sequential: bool = False

    def __post_init__(self) -> None:
        if len(self.delay_units) != self.n_outputs:
            raise ValueError(
                f"{self.name}: {self.n_outputs} outputs but "
                f"{len(self.delay_units)} delay entries"
            )

    @property
    def leak_units(self) -> float:
        """Off-current relative to the inverter (2 transistors)."""
        return self.transistors / 2.0

    @property
    def cap_units(self) -> float:
        """Switched capacitance relative to the inverter."""
        return self.transistors / 2.0

    @property
    def capacitance(self) -> float:
        """Equivalent switched capacitance [F]."""
        return self.cap_units * CAP_PER_UNIT

    @property
    def area_um2(self) -> float:
        """Layout area [µm²]."""
        return self.transistors * AREA_PER_TRANSISTOR

    def evaluate(self, inputs: tuple[int, ...]) -> tuple[int, ...]:
        """Evaluate the cell's combinational function."""
        if self.logic is None:
            raise ValueError(f"{self.name} is sequential; the simulator owns its state")
        if len(inputs) != self.n_inputs:
            raise ValueError(
                f"{self.name} expects {self.n_inputs} inputs, got {len(inputs)}"
            )
        return self.logic(inputs)


def _inv(p):
    return (1 - p[0],)


def _buf(p):
    return (p[0],)


def _and2(p):
    return (p[0] & p[1],)


def _or2(p):
    return (p[0] | p[1],)


def _nand2(p):
    return (1 - (p[0] & p[1]),)


def _nor2(p):
    return (1 - (p[0] | p[1]),)


def _xor2(p):
    return (p[0] ^ p[1],)


def _xnor2(p):
    return (1 - (p[0] ^ p[1]),)


def _and3(p):
    return (p[0] & p[1] & p[2],)


def _or3(p):
    return (p[0] | p[1] | p[2],)


def _mux2(p):
    # inputs: (d0, d1, select)
    return (p[1] if p[2] else p[0],)


def _ha(p):
    a, b = p
    return (a ^ b, a & b)  # (sum, carry)


def _fa(p):
    a, b, c = p
    return (a ^ b ^ c, (a & b) | (a & c) | (b & c))  # (sum, carry)


def _aoi21(p):
    a, b, c = p
    return (1 - ((a & b) | c),)


INV = CellType("INV", 1, 1, 2, (1.0,), _inv)
BUF = CellType("BUF", 1, 1, 4, (1.6,), _buf)
AND2 = CellType("AND2", 2, 1, 6, (1.8,), _and2)
OR2 = CellType("OR2", 2, 1, 6, (1.8,), _or2)
NAND2 = CellType("NAND2", 2, 1, 4, (1.2,), _nand2)
NOR2 = CellType("NOR2", 2, 1, 4, (1.4,), _nor2)
XOR2 = CellType("XOR2", 2, 1, 10, (2.6,), _xor2)
XNOR2 = CellType("XNOR2", 2, 1, 10, (2.6,), _xnor2)
AND3 = CellType("AND3", 3, 1, 8, (2.2,), _and3)
OR3 = CellType("OR3", 3, 1, 8, (2.2,), _or3)
MUX2 = CellType("MUX2", 3, 1, 10, (2.2,), _mux2)
AOI21 = CellType("AOI21", 3, 1, 6, (1.6,), _aoi21)
#: Half adder: outputs (sum, carry); the carry is a bare AND stack.
HA = CellType("HA", 2, 2, 14, (2.6, 1.8), _ha)
#: Mirror full adder: outputs (sum, carry); carry is the fast output.
FA = CellType("FA", 3, 2, 28, (3.8, 2.0), _fa)
#: Rising-edge D flip-flop; delay is clock-to-q.
DFF = CellType("DFF", 1, 1, 24, (2.0,), None, sequential=True)
#: D flip-flop with enable: inputs (d, enable); holds state when enable=0.
DFFE = CellType("DFFE", 2, 1, 30, (2.0,), None, sequential=True)
#: Constant drivers (zero-input cells).
TIELO = CellType("TIELO", 0, 1, 2, (0.0,), lambda p: (0,))
TIEHI = CellType("TIEHI", 0, 1, 2, (0.0,), lambda p: (1,))

#: All library cells keyed by name.
LIBRARY = {
    cell.name: cell
    for cell in (
        INV, BUF, AND2, OR2, NAND2, NOR2, XOR2, XNOR2, AND3, OR3,
        MUX2, AOI21, HA, FA, DFF, DFFE, TIELO, TIEHI,
    )
}


def cell(name: str) -> CellType:
    """Look up a library cell by name.

    >>> cell("FA").n_outputs
    2
    """
    try:
        return LIBRARY[name]
    except KeyError:
        raise KeyError(f"unknown cell {name!r}; library has: {sorted(LIBRARY)}")
