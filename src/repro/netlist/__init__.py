"""Standard-cell library and gate-level netlist substrate (DESIGN.md S6)."""

from .builder import Builder, Bus
from .cells import (
    AREA_PER_TRANSISTOR,
    CAP_PER_UNIT,
    CellType,
    LIBRARY,
    cell,
)
from .netlist import CellInstance, NetInfo, Netlist, NetlistError
from .verify import VerificationError, VerificationReport, verify_multiplier
from .verilog import export_design, library_verilog, netlist_to_verilog

__all__ = [
    "AREA_PER_TRANSISTOR",
    "Builder",
    "Bus",
    "CAP_PER_UNIT",
    "CellInstance",
    "CellType",
    "LIBRARY",
    "NetInfo",
    "Netlist",
    "NetlistError",
    "VerificationError",
    "VerificationReport",
    "cell",
    "export_design",
    "library_verilog",
    "netlist_to_verilog",
    "verify_multiplier",
]
