"""Gate-level netlist graph (replaces the paper's Design Compiler output).

A :class:`Netlist` is a synchronous single-clock circuit: primary inputs,
primary outputs, combinational cells and DFF state elements, connected by
integer-indexed nets.  It supports

* structural construction (``add_input`` / ``add_cell`` / ``set_outputs``),
* validation (single driver per net, no combinational cycles, complete
  connectivity),
* zero-delay functional evaluation cycle by cycle (the golden-model path
  used by :mod:`repro.netlist.verify`),
* aggregate statistics (cell counts, area, leak/cap unit totals) that feed
  :class:`repro.core.architecture.ArchitectureParameters`.

Event-driven *timed* simulation lives in :mod:`repro.sim`; static timing in
:mod:`repro.sta`.  Both consume the representation defined here.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field

from .cells import CellType, LIBRARY


@dataclass(frozen=True)
class CellInstance:
    """One placed cell: its type, input nets and output nets."""

    index: int
    name: str
    cell_type: CellType
    inputs: tuple[int, ...]
    outputs: tuple[int, ...]


@dataclass
class NetInfo:
    """Book-keeping for one net: who drives it, who reads it."""

    name: str
    driver_cell: int | None = None   # cell index; None for primary inputs
    driver_pin: int = 0              # output pin index on the driver
    is_primary_input: bool = False
    is_placeholder: bool = False     # forward reference awaiting rewire()
    fanout: list[tuple[int, int]] = field(default_factory=list)  # (cell, pin)


class NetlistError(ValueError):
    """Raised for structural rule violations (double drive, cycles...)."""


class Netlist:
    """A synchronous gate-level circuit over :data:`repro.netlist.cells.LIBRARY`."""

    def __init__(self, name: str):
        self.name = name
        self.nets: list[NetInfo] = []
        self.cells: list[CellInstance] = []
        self.primary_inputs: list[int] = []
        self.primary_outputs: list[int] = []
        self._frozen = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> int:
        """Create a primary input; returns its net index."""
        self._check_mutable()
        net = self._new_net(name)
        self.nets[net].is_primary_input = True
        self.primary_inputs.append(net)
        return net

    def add_input_bus(self, name: str, width: int) -> list[int]:
        """Create ``width`` primary inputs named ``name[0..width-1]``."""
        return [self.add_input(f"{name}[{bit}]") for bit in range(width)]

    def add_placeholder(self, name: str) -> int:
        """Create a forward-reference net for feedback loops.

        State machines (counters, shift registers) need a flip-flop's Q
        while building the logic that computes its D.  A placeholder can
        be consumed immediately and must be resolved with :meth:`rewire`
        before :meth:`freeze`.
        """
        self._check_mutable()
        net = self._new_net(name)
        self.nets[net].is_placeholder = True
        return net

    def rewire(self, placeholder: int, source: int) -> None:
        """Resolve a placeholder: all its consumers now read ``source``."""
        self._check_mutable()
        self._check_net(placeholder)
        self._check_net(source)
        info = self.nets[placeholder]
        if not info.is_placeholder:
            raise NetlistError(
                f"net {placeholder} ({info.name}) is not a placeholder"
            )
        if self.nets[source].is_placeholder:
            raise NetlistError("cannot rewire a placeholder onto another placeholder")
        for cell_index, pin in info.fanout:
            instance = self.cells[cell_index]
            new_inputs = tuple(
                source if (current == placeholder and position == pin) else current
                for position, current in enumerate(instance.inputs)
            )
            self.cells[cell_index] = CellInstance(
                index=instance.index,
                name=instance.name,
                cell_type=instance.cell_type,
                inputs=new_inputs,
                outputs=instance.outputs,
            )
            self.nets[source].fanout.append((cell_index, pin))
        info.fanout.clear()
        info.name = f"{info.name}(resolved->{self.nets[source].name})"

    def add_cell(
        self,
        cell_type: CellType | str,
        inputs: list[int],
        name: str | None = None,
    ) -> list[int]:
        """Instantiate a cell; returns the list of its output net indices."""
        self._check_mutable()
        if isinstance(cell_type, str):
            cell_type = LIBRARY[cell_type]
        if len(inputs) != cell_type.n_inputs:
            raise NetlistError(
                f"{cell_type.name} expects {cell_type.n_inputs} inputs, "
                f"got {len(inputs)}"
            )
        for net in inputs:
            self._check_net(net)

        cell_index = len(self.cells)
        instance_name = name or f"{cell_type.name.lower()}_{cell_index}"
        outputs = tuple(
            self._new_net(f"{instance_name}.{pin}")
            for pin in range(cell_type.n_outputs)
        )
        for pin, net in enumerate(outputs):
            self.nets[net].driver_cell = cell_index
            self.nets[net].driver_pin = pin
        for pin, net in enumerate(inputs):
            self.nets[net].fanout.append((cell_index, pin))

        self.cells.append(
            CellInstance(
                index=cell_index,
                name=instance_name,
                cell_type=cell_type,
                inputs=tuple(inputs),
                outputs=outputs,
            )
        )
        return list(outputs)

    def set_outputs(self, nets: list[int]) -> None:
        """Declare the primary outputs (a flat list of net indices)."""
        self._check_mutable()
        for net in nets:
            self._check_net(net)
        self.primary_outputs = list(nets)

    def freeze(self) -> "Netlist":
        """Validate and seal the netlist; returns self for chaining."""
        self.validate()
        self._frozen = True
        return self

    # ------------------------------------------------------------------
    # validation and derived structure
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`NetlistError` on structural violations."""
        for net_index, info in enumerate(self.nets):
            if info.is_placeholder:
                if info.fanout:
                    raise NetlistError(
                        f"placeholder net {net_index} ({info.name}) was never "
                        f"rewire()d but still has {len(info.fanout)} consumer(s)"
                    )
                continue  # resolved placeholder: inert
            driven = info.is_primary_input or info.driver_cell is not None
            if not driven:
                raise NetlistError(f"net {net_index} ({info.name}) has no driver")
            if info.is_primary_input and info.driver_cell is not None:
                raise NetlistError(
                    f"net {net_index} ({info.name}) is both a primary input "
                    f"and driven by cell {info.driver_cell}"
                )
        if not self.primary_outputs:
            raise NetlistError(f"netlist {self.name!r} declares no primary outputs")
        for net in self.primary_outputs:
            if self.nets[net].is_placeholder:
                raise NetlistError(
                    f"primary output net {net} ({self.nets[net].name}) is an "
                    f"unresolved placeholder"
                )
        self.combinational_order()  # raises on combinational cycles

    def combinational_order(self) -> list[int]:
        """Topological order of the combinational cells (Kahn's algorithm).

        Sequential cells are sources (their outputs are state) and sinks
        (their inputs are captured at the clock edge), so they never
        appear in the ordering.  Raises on combinational cycles.
        """
        indegree = {}
        for instance in self.cells:
            if instance.cell_type.sequential:
                continue
            count = 0
            for net in instance.inputs:
                info = self.nets[net]
                if info.driver_cell is not None:
                    driver = self.cells[info.driver_cell]
                    if not driver.cell_type.sequential:
                        count += 1
            indegree[instance.index] = count

        ready = deque(index for index, count in indegree.items() if count == 0)
        order: list[int] = []
        while ready:
            cell_index = ready.popleft()
            order.append(cell_index)
            for net in self.cells[cell_index].outputs:
                for consumer, _pin in self.nets[net].fanout:
                    if consumer in indegree:
                        indegree[consumer] -= 1
                        if indegree[consumer] == 0:
                            ready.append(consumer)
        if len(order) != len(indegree):
            raise NetlistError(
                f"netlist {self.name!r} contains a combinational cycle "
                f"({len(indegree) - len(order)} cells unreachable)"
            )
        return order

    # ------------------------------------------------------------------
    # zero-delay functional evaluation
    # ------------------------------------------------------------------
    def initial_state(self) -> dict[int, int]:
        """All-zero DFF state, keyed by cell index."""
        return {
            instance.index: 0
            for instance in self.cells
            if instance.cell_type.sequential
        }

    def evaluate_cycle(
        self,
        input_values: dict[int, int],
        state: dict[int, int],
    ) -> tuple[dict[int, int], dict[int, int]]:
        """One clock cycle of zero-delay evaluation.

        Parameters
        ----------
        input_values:
            Primary-input net index -> 0/1 value, for this cycle.
        state:
            DFF state (cell index -> 0/1) *before* the clock edge.

        Returns
        -------
        (net_values, next_state):
            Settled value of every net during the cycle, and the state
            after the next rising edge.
        """
        values: dict[int, int] = {}
        for net in self.primary_inputs:
            if net not in input_values:
                raise NetlistError(
                    f"missing value for primary input {self.nets[net].name!r}"
                )
            values[net] = input_values[net]
        for instance in self.cells:
            if instance.cell_type.sequential:
                values[instance.outputs[0]] = state[instance.index]

        for cell_index in self.combinational_order():
            instance = self.cells[cell_index]
            inputs = tuple(values[net] for net in instance.inputs)
            for net, value in zip(instance.outputs, instance.cell_type.evaluate(inputs)):
                values[net] = value

        next_state: dict[int, int] = {}
        for instance in self.cells:
            if not instance.cell_type.sequential:
                continue
            data = values[instance.inputs[0]]
            if instance.cell_type.name == "DFFE":
                enable = values[instance.inputs[1]]
                next_state[instance.index] = data if enable else state[instance.index]
            else:
                next_state[instance.index] = data
        return values, next_state

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def n_cells(self) -> int:
        """Total placed cells (combinational + sequential)."""
        return len(self.cells)

    def cell_counts(self) -> Counter:
        """Histogram of cell-type names."""
        return Counter(instance.cell_type.name for instance in self.cells)

    @property
    def area_um2(self) -> float:
        """Total layout area [µm²]."""
        return sum(instance.cell_type.area_um2 for instance in self.cells)

    @property
    def total_leak_units(self) -> float:
        """Sum of per-cell leakage in inverter units."""
        return sum(instance.cell_type.leak_units for instance in self.cells)

    @property
    def average_leak_units(self) -> float:
        """Average per-cell leakage relative to the inverter (= io_factor)."""
        return self.total_leak_units / self.n_cells

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        counts = ", ".join(
            f"{name}:{count}" for name, count in sorted(self.cell_counts().items())
        )
        return (
            f"{self.name}: {self.n_cells} cells, {len(self.nets)} nets, "
            f"{len(self.primary_inputs)} PIs, {len(self.primary_outputs)} POs, "
            f"area {self.area_um2:.0f} um2 [{counts}]"
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _new_net(self, name: str) -> int:
        self.nets.append(NetInfo(name=name))
        return len(self.nets) - 1

    def _check_net(self, net: int) -> None:
        if not 0 <= net < len(self.nets):
            raise NetlistError(f"net index {net} out of range")

    def _check_mutable(self) -> None:
        if self._frozen:
            raise NetlistError(f"netlist {self.name!r} is frozen")
