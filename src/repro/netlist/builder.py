"""Bus-level construction helpers on top of :class:`~repro.netlist.netlist.Netlist`.

Generators in :mod:`repro.generators` express datapaths in terms of buses
(little-endian lists of net indices).  This module supplies the common
word-level idioms: registered buses, bitwise gates, 2:1 word multiplexers,
constants and shifts, so each generator reads like the block diagram in
the paper's Figures 3–4.
"""

from __future__ import annotations

from .cells import AND2, DFF, DFFE, INV, MUX2, TIEHI, TIELO, XOR2
from .netlist import Netlist

#: A bus is a little-endian list of net indices (index 0 = LSB).
Bus = list


class Builder:
    """Thin stateful wrapper adding word-level operations to a netlist."""

    def __init__(self, netlist: Netlist):
        self.netlist = netlist

    # -- scalar helpers -------------------------------------------------
    def const(self, value: int) -> int:
        """A constant-0 or constant-1 net (TIE cell)."""
        cell = TIEHI if value else TIELO
        return self.netlist.add_cell(cell, [])[0]

    def gate(self, cell_name: str, *inputs: int) -> int:
        """Single-output gate; returns its output net."""
        return self.netlist.add_cell(cell_name, list(inputs))[0]

    def invert(self, net: int) -> int:
        """Logical NOT."""
        return self.netlist.add_cell(INV, [net])[0]

    def register(self, net: int, enable: int | None = None) -> int:
        """A DFF (or enabled DFFE) on one net; returns the Q net."""
        if enable is None:
            return self.netlist.add_cell(DFF, [net])[0]
        return self.netlist.add_cell(DFFE, [net, enable])[0]

    def mux(self, d0: int, d1: int, select: int) -> int:
        """2:1 multiplexer: ``select ? d1 : d0``."""
        return self.netlist.add_cell(MUX2, [d0, d1, select])[0]

    # -- bus helpers -----------------------------------------------------
    def const_bus(self, value: int, width: int) -> Bus:
        """A bus tied to the binary encoding of ``value``."""
        return [self.const((value >> bit) & 1) for bit in range(width)]

    def register_bus(self, bus: Bus, enable: int | None = None) -> Bus:
        """Register every bit of a bus."""
        return [self.register(net, enable) for net in bus]

    def bitwise(self, cell_name: str, bus_a: Bus, bus_b: Bus) -> Bus:
        """Bitwise two-input gate across two equal-width buses."""
        if len(bus_a) != len(bus_b):
            raise ValueError(
                f"bus width mismatch: {len(bus_a)} vs {len(bus_b)}"
            )
        return [
            self.gate(cell_name, a, b) for a, b in zip(bus_a, bus_b)
        ]

    def and_word(self, bus: Bus, bit: int) -> Bus:
        """AND every bus bit with one control bit (partial-product row)."""
        return [self.netlist.add_cell(AND2, [net, bit])[0] for net in bus]

    def xor_word(self, bus_a: Bus, bus_b: Bus) -> Bus:
        """Bitwise XOR of two buses."""
        return self.bitwise(XOR2.name, bus_a, bus_b)

    def mux_bus(self, bus0: Bus, bus1: Bus, select: int) -> Bus:
        """Word-level 2:1 multiplexer."""
        if len(bus0) != len(bus1):
            raise ValueError(
                f"bus width mismatch: {len(bus0)} vs {len(bus1)}"
            )
        return [self.mux(a, b, select) for a, b in zip(bus0, bus1)]

    def shift_left(self, bus: Bus, amount: int, fill: int | None = None) -> Bus:
        """Logical shift left by ``amount`` (width grows by ``amount``)."""
        if fill is None:
            fill = self.const(0)
        return [fill] * amount + list(bus)

    def take(self, bus: Bus, width: int) -> Bus:
        """Truncate a bus to its ``width`` least significant bits."""
        return list(bus[:width])
