"""Structural Verilog export of generated netlists.

Lets the generated multipliers leave the Python world: the emitted
modules instantiate a small behavioural cell library (also emitted), so
the output is self-contained and simulable by any Verilog tool — the
practical hand-off a downstream user of this reproduction would want.

Only export is provided (the netlists originate here; importing foreign
netlists is out of scope for the paper's flow).
"""

from __future__ import annotations

import re

from .cells import LIBRARY, CellType
from .netlist import Netlist

_IDENTIFIER = re.compile(r"[^A-Za-z0-9_]")

#: Behavioural bodies for every library cell, keyed by name.
_CELL_BODIES = {
    "INV": "assign y0 = ~a0;",
    "BUF": "assign y0 = a0;",
    "AND2": "assign y0 = a0 & a1;",
    "OR2": "assign y0 = a0 | a1;",
    "NAND2": "assign y0 = ~(a0 & a1);",
    "NOR2": "assign y0 = ~(a0 | a1);",
    "XOR2": "assign y0 = a0 ^ a1;",
    "XNOR2": "assign y0 = ~(a0 ^ a1);",
    "AND3": "assign y0 = a0 & a1 & a2;",
    "OR3": "assign y0 = a0 | a1 | a2;",
    "MUX2": "assign y0 = a2 ? a1 : a0;",
    "AOI21": "assign y0 = ~((a0 & a1) | a2);",
    "HA": "assign y0 = a0 ^ a1;\n  assign y1 = a0 & a1;",
    "FA": (
        "assign y0 = a0 ^ a1 ^ a2;\n"
        "  assign y1 = (a0 & a1) | (a0 & a2) | (a1 & a2);"
    ),
    "DFF": (
        "reg state = 1'b0;\n"
        "  always @(posedge clk) state <= a0;\n"
        "  assign y0 = state;"
    ),
    "DFFE": (
        "reg state = 1'b0;\n"
        "  always @(posedge clk) if (a1) state <= a0;\n"
        "  assign y0 = state;"
    ),
    "TIELO": "assign y0 = 1'b0;",
    "TIEHI": "assign y0 = 1'b1;",
}


def sanitize(name: str) -> str:
    """Turn an arbitrary net/instance name into a legal Verilog identifier."""
    cleaned = _IDENTIFIER.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = f"n_{cleaned}"
    return cleaned


def cell_module(cell_type: CellType) -> str:
    """Behavioural Verilog module for one library cell."""
    try:
        body = _CELL_BODIES[cell_type.name]
    except KeyError:
        raise KeyError(f"no Verilog body registered for cell {cell_type.name!r}")
    inputs = [f"a{pin}" for pin in range(cell_type.n_inputs)]
    outputs = [f"y{pin}" for pin in range(cell_type.n_outputs)]
    ports = inputs + outputs + (["clk"] if cell_type.sequential else [])
    lines = [f"module {cell_type.name} ({', '.join(ports)});"]
    for port in inputs:
        lines.append(f"  input {port};")
    if cell_type.sequential:
        lines.append("  input clk;")
    for port in outputs:
        lines.append(f"  output {port};")
    lines.append(f"  {body}")
    lines.append("endmodule")
    return "\n".join(lines)


def library_verilog(cell_names: set[str] | None = None) -> str:
    """Verilog for the whole (or a subset of the) cell library."""
    names = sorted(cell_names) if cell_names is not None else sorted(_CELL_BODIES)
    return "\n\n".join(cell_module(LIBRARY[name]) for name in names)


def netlist_to_verilog(netlist: Netlist, module_name: str | None = None) -> str:
    """Structural Verilog for a netlist (cell library not included).

    Primary inputs/outputs become module ports (plus ``clk`` when the
    netlist contains state); internal nets become wires named after their
    netlist names.
    """
    module = sanitize(module_name or netlist.name)
    has_state = any(
        instance.cell_type.sequential for instance in netlist.cells
    )

    net_names: dict[int, str] = {}
    used: set[str] = set()
    for index, info in enumerate(netlist.nets):
        candidate = sanitize(info.name)
        while candidate in used:
            candidate = f"{candidate}_{index}"
        used.add(candidate)
        net_names[index] = candidate

    input_ports = [net_names[net] for net in netlist.primary_inputs]
    output_ports = []
    output_assigns = []
    for position, net in enumerate(netlist.primary_outputs):
        port = f"po_{position}"
        output_ports.append(port)
        output_assigns.append(f"  assign {port} = {net_names[net]};")

    ports = input_ports + output_ports + (["clk"] if has_state else [])
    lines = [f"module {module} ({', '.join(ports)});"]
    for port in input_ports:
        lines.append(f"  input {port};")
    if has_state:
        lines.append("  input clk;")
    for port in output_ports:
        lines.append(f"  output {port};")

    internal = [
        net_names[index]
        for index, info in enumerate(netlist.nets)
        if not info.is_primary_input and not info.is_placeholder
    ]
    for wire in internal:
        lines.append(f"  wire {wire};")

    for instance in netlist.cells:
        connections = [
            f".a{pin}({net_names[net]})" for pin, net in enumerate(instance.inputs)
        ]
        connections += [
            f".y{pin}({net_names[net]})" for pin, net in enumerate(instance.outputs)
        ]
        if instance.cell_type.sequential:
            connections.append(".clk(clk)")
        lines.append(
            f"  {instance.cell_type.name} {sanitize(instance.name)} "
            f"({', '.join(connections)});"
        )

    lines.extend(output_assigns)
    lines.append("endmodule")
    return "\n".join(lines)


def export_design(netlist: Netlist, module_name: str | None = None) -> str:
    """Self-contained Verilog: the design plus the cells it instantiates."""
    used_cells = {instance.cell_type.name for instance in netlist.cells}
    return (
        f"// generated by repro from netlist {netlist.name!r}\n\n"
        + library_verilog(used_cells)
        + "\n\n"
        + netlist_to_verilog(netlist, module_name)
        + "\n"
    )
