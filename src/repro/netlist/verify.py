"""Functional verification of generated multipliers against integer golden.

Every architecture in the registry is checked by zero-delay cycle
simulation: operand pairs are streamed in (one per ``cycles_per_result``
internal cycles), output words are sampled every result slot, and the
stream of sampled products must equal ``a*b`` after a fixed alignment
(the pipeline/sequencing latency).  The latency is *detected* from the
stream rather than declared, so an off-by-one in a generator shows up as
a hard verification failure instead of a silently wrong latency constant.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..generators.base import MultiplierImplementation


class VerificationError(AssertionError):
    """A generated multiplier disagreed with integer multiplication."""


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of :func:`verify_multiplier`."""

    name: str
    n_vectors: int
    latency_slots: int
    cycles_simulated: int

    def describe(self) -> str:
        return (
            f"{self.name}: {self.n_vectors} vectors OK, "
            f"latency {self.latency_slots} result slot(s), "
            f"{self.cycles_simulated} cycles simulated"
        )


def _corner_operands(width: int) -> list[tuple[int, int]]:
    """Deterministic corner cases every multiplier must survive."""
    top = (1 << width) - 1
    half = 1 << (width // 2)
    return [
        (0, 0),
        (0, top),
        (top, 0),
        (1, 1),
        (1, top),
        (top, top),
        (half, half),
        (half - 1, half + 1),
        (top, 1),
        (0b1010 % (top + 1), 0b0101 % (top + 1)),
    ]


def sample_products(
    impl: MultiplierImplementation, operand_pairs: list[tuple[int, int]]
) -> list[int]:
    """Stream operand pairs through the netlist; sample one product per slot.

    The sample is taken on the *last* internal cycle of each result slot,
    after state has settled for that slot.
    """
    netlist = impl.netlist
    state = netlist.initial_state()
    sampled: list[int] = []
    for a, b in operand_pairs:
        values = None
        for assignment in impl.operand_cycles(a, b):
            values, state = netlist.evaluate_cycle(assignment, state)
        sampled.append(impl.read_product(values))
    return sampled


def verify_multiplier(
    impl: MultiplierImplementation,
    n_vectors: int = 50,
    seed: int = 2006,
    max_latency_slots: int = 8,
) -> VerificationReport:
    """Check ``impl`` against integer multiplication on random + corner vectors.

    Raises :class:`VerificationError` with a precise counterexample when
    any aligned product mismatches.
    """
    rng = random.Random(seed)
    top = (1 << impl.width) - 1
    pairs = _corner_operands(impl.width)
    pairs += [(rng.randint(0, top), rng.randint(0, top)) for _ in range(n_vectors)]
    # Flush slots so the last real results drain out of the pipeline.
    flush = [(0, 0)] * max_latency_slots
    all_pairs = pairs + flush

    sampled = sample_products(impl, all_pairs)
    expected = [a * b for a, b in pairs]

    latency = _detect_latency(sampled, expected, max_latency_slots, impl.name)
    for index, want in enumerate(expected):
        got = sampled[index + latency]
        if got != want:
            a, b = pairs[index]
            raise VerificationError(
                f"{impl.name}: vector {index}: {a} * {b} = {want}, "
                f"netlist produced {got} (latency {latency})"
            )
    cycles = len(all_pairs) * impl.cycles_per_result
    return VerificationReport(
        name=impl.name,
        n_vectors=len(pairs),
        latency_slots=latency,
        cycles_simulated=cycles,
    )


def _detect_latency(
    sampled: list[int], expected: list[int], max_latency: int, name: str
) -> int:
    """Find the alignment that matches the whole expected stream."""
    for latency in range(max_latency + 1):
        window = sampled[latency : latency + len(expected)]
        if window == expected:
            return latency
    raise VerificationError(
        f"{name}: no alignment within {max_latency} slots matches integer "
        f"multiplication; first expected {expected[:4]}, "
        f"sampled stream starts {sampled[: max_latency + 4]}"
    )
