"""Deterministic scenario sharding and columnar shard merging.

A :class:`~repro.explore.scenario.Scenario` is a cartesian product
(derived architectures × technologies × frequencies), so it splits into
sub-scenarios along one axis without changing a single candidate:
:func:`shard_scenario` cuts the derived-architecture axis when it is
wide enough, the frequency axis otherwise, and returns :class:`Shard`
objects that each carry a fully formed sub-``Scenario`` plus the global
row indices its expansion occupies in the parent sweep.

Because every shard *is* a Scenario, a shard evaluated through
:func:`repro.explore.engine.explore` is keyed by its own content hash in
the shared result cache — re-submitting a job (or resuming one after a
crash) re-reads finished shards instead of recomputing them, which is
what makes jobs exactly-once per shard.

:func:`merge_tables` is the reduce step: scatter the shard
:class:`~repro.explore.columnar.ResultTable` columns back into parent
row order.  The merged table is row-for-row identical to the unsharded
run — same arithmetic on the same rows, only grouped differently — and
:func:`merge_stats` aggregates the per-shard ``EvaluationStats``
(counters summed, phase wall-times summed) to match.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Sequence

import numpy as np

from ..explore.engine import EvaluationStats
from ..explore.columnar import ResultTable
from ..explore.scenario import Scenario

__all__ = ["Shard", "merge_stats", "merge_tables", "shard_scenario"]

#: Default upper bound on shards per job when the caller does not pick a
#: count: enough to feed a few worker threads without slicing a small
#: sweep into confetti.
DEFAULT_MAX_SHARDS = 8


@dataclass(frozen=True)
class Shard:
    """One slice of a sharded sweep.

    ``scenario`` expands to exactly the parent rows listed (in order) by
    ``row_indices``; ``key`` is the slice's own content hash — the same
    hash the engine's result cache computes, so one shard maps to one
    cache entry.
    """

    index: int
    count: int
    scenario: Scenario
    row_indices: np.ndarray

    @property
    def n(self) -> int:
        return len(self.row_indices)

    @property
    def key(self) -> str:
        return self.scenario.content_hash()

    def describe(self) -> str:
        return (
            f"shard {self.index + 1}/{self.count}: "
            f"{self.n} rows of {self.scenario.name!r}"
        )


def _shard_name(scenario: Scenario, index: int, count: int) -> str:
    return f"{scenario.name}::shard-{index + 1}-of-{count}"


def shard_scenario(scenario: Scenario, n_shards: int | None = None) -> list[Shard]:
    """Split a scenario into ``n_shards`` deterministic sub-scenarios.

    The split is a pure function of ``(scenario, n_shards)``: the
    derived-architecture axis is cut into contiguous runs when it has at
    least ``n_shards`` entries (each shard's rows are then one
    contiguous parent block), otherwise the frequency grid is cut and
    each shard's rows interleave with the others by frequency position.
    Either way shard ``i`` expands to exactly ``row_indices[i]`` of the
    parent expansion, shard sizes differ by at most one axis unit, and
    the requested count is clamped to what the axes can support (a
    single-point scenario yields one shard).
    """
    if n_shards is None:
        n_shards = DEFAULT_MAX_SHARDS
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    derived = tuple(scenario.derived_architectures())
    n_arch = len(derived)
    n_tech = len(scenario.technologies)
    frequencies = tuple(scenario.frequencies)
    n_freq = len(frequencies)
    count = max(1, min(n_shards, max(n_arch, n_freq)))

    # Transform chains are folded into the derived architectures so each
    # sub-scenario is identity-chained; the parent expansion order
    # (derived-arch major, then technology, then frequency) is exactly
    # the order these sub-scenarios reproduce.
    shards: list[Shard] = []
    if n_arch >= count:
        block = n_tech * n_freq
        for index, split in enumerate(np.array_split(np.arange(n_arch), count)):
            lo, hi = int(split[0]), int(split[-1]) + 1
            sub = Scenario(
                name=_shard_name(scenario, index, count),
                description=scenario.description,
                architectures=derived[lo:hi],
                technologies=scenario.technologies,
                frequencies=scenario.frequencies,
                transform_chains=((),),
            )
            shards.append(
                Shard(
                    index=index,
                    count=count,
                    scenario=sub,
                    row_indices=np.arange(lo * block, hi * block),
                )
            )
        return shards

    flat = np.arange(n_arch * n_tech) * n_freq
    for index, split in enumerate(np.array_split(np.arange(n_freq), count)):
        lo, hi = int(split[0]), int(split[-1]) + 1
        sub = Scenario(
            name=_shard_name(scenario, index, count),
            description=scenario.description,
            architectures=derived,
            technologies=scenario.technologies,
            frequencies=replace(
                scenario.frequencies, values=frequencies[lo:hi]
            ),
            transform_chains=((),),
        )
        indices = (flat[:, None] + np.arange(lo, hi)[None, :]).ravel()
        shards.append(
            Shard(index=index, count=count, scenario=sub, row_indices=indices)
        )
    return shards


def merge_tables(
    tables: Sequence[ResultTable | Shard | tuple[Shard, ResultTable]],
    indices: Sequence[np.ndarray] | None = None,
) -> ResultTable:
    """Concatenate columnar shard tables back into parent row order.

    ``tables`` is the per-shard :class:`ResultTable` list (or
    ``(Shard, table)`` pairs, in which case the shard row indices are
    used automatically).  Without ``indices`` the tables are stacked in
    the given order; with ``indices`` (one global-row array per table)
    every column is scattered into its parent position, so any sharding
    scheme — contiguous blocks or frequency interleaves — merges to the
    exact unsharded layout.
    """
    pairs: list[tuple[np.ndarray | None, ResultTable]] = []
    for position, item in enumerate(tables):
        if isinstance(item, tuple):
            shard, table = item
            pairs.append((shard.row_indices, table))
        else:
            rows = None if indices is None else np.asarray(indices[position])
            pairs.append((rows, item))
    if not pairs:
        raise ValueError("merge_tables needs at least one shard table")

    if all(rows is None for rows, _ in pairs):
        return ResultTable(
            {
                name: np.concatenate(
                    [table.columns[name] for _, table in pairs]
                )
                for name in pairs[0][1].columns
            }
        )
    if any(rows is None for rows, _ in pairs):
        raise ValueError(
            "merge_tables needs row indices for every shard or for none"
        )

    total = sum(len(table) for _, table in pairs)
    for rows, table in pairs:
        if len(rows) != len(table):
            raise ValueError(
                f"shard of {len(table)} rows carries {len(rows)} row indices"
            )
    seen = np.zeros(total, dtype=bool)
    for rows, _ in pairs:
        if rows.size and (rows.min() < 0 or rows.max() >= total):
            raise ValueError(
                f"shard row indices out of range for {total} merged rows"
            )
        seen[rows] = True
    if not seen.all():
        raise ValueError("shard row indices do not cover the merged table")

    merged: dict[str, np.ndarray] = {}
    for name, first in pairs[0][1].columns.items():
        out = np.empty(total, dtype=first.dtype)
        for rows, table in pairs:
            out[rows] = table.columns[name]
        merged[name] = out
    return ResultTable(merged)


def merge_stats(
    stats: Iterable[EvaluationStats],
    elapsed_seconds: float | None = None,
) -> EvaluationStats:
    """Aggregate per-shard stats into one sweep-level tally.

    Counters sum; ``phases`` sums per phase name (total engine seconds
    spent in each phase across all shards — with parallel shards this
    exceeds the job's wall time on purpose, the same way CPU seconds
    do).  ``elapsed_seconds`` defaults to the shard sum; pass the job's
    measured wall time for a true end-to-end figure.
    """
    stats = list(stats)
    if not stats:
        raise ValueError("merge_stats needs at least one shard's stats")
    phases: dict[str, float] = {}
    for entry in stats:
        for name, seconds in entry.phases.items():
            phases[name] = phases.get(name, 0.0) + seconds
    return EvaluationStats(
        n_candidates=sum(s.n_candidates for s in stats),
        n_feasible=sum(s.n_feasible for s in stats),
        n_vectorized=sum(s.n_vectorized for s in stats),
        n_fallback=sum(s.n_fallback for s in stats),
        elapsed_seconds=(
            sum(s.elapsed_seconds for s in stats)
            if elapsed_seconds is None
            else elapsed_seconds
        ),
        phases=phases,
    )
