"""Crash-safe persistent job state: one JSON file per job.

:class:`JobStore` is the durable half of the job subsystem.  Every
:class:`JobRecord` mutation rewrites the job's file atomically
(write-to-temp, ``os.replace``) — the same discipline as the result
cache — so a killed process never leaves a half-written record, and a
restarted one reloads every job exactly as last persisted.  Terminal
states (``done`` / ``failed`` / ``cancelled``) therefore survive any
restart; non-terminal jobs are what :meth:`JobManager.recover
<repro.jobs.manager.JobManager.recover>` re-queues, which is safe
because finished shards live in the result cache and replay for free.

The store is also the change-notification hub: every save bumps a
version counter under a condition variable, so event streams and
``wait()`` callers block on real transitions instead of hot-polling.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from .. import obs
from ..resilience import faults

__all__ = [
    "JOBS_DIR_ENV",
    "JobNotFound",
    "JobRecord",
    "JobStore",
    "STATES",
    "TERMINAL_STATES",
    "default_jobs_dir",
]

#: Environment override for the default job-store location.
JOBS_DIR_ENV = "REPRO_JOBS_DIR"

#: States a job can no longer leave; exactly these must survive restarts.
TERMINAL_STATES = ("done", "failed", "cancelled")

#: The full lifecycle: ``queued → running → done | failed | cancelled``.
STATES = ("queued", "running", *TERMINAL_STATES)

#: Events kept per job (state transitions + one per shard); older ones
#: are dropped oldest-first so a many-shard job cannot balloon its file.
MAX_EVENTS = 512


class JobNotFound(KeyError):
    """No job with the requested id exists in this store."""

    def __init__(self, job_id: str) -> None:
        super().__init__(job_id)
        self.job_id = job_id

    def __str__(self) -> str:
        return f"no job {self.job_id!r} in the job store"


def default_jobs_dir() -> Path:
    """``$REPRO_JOBS_DIR`` or ``~/.cache/repro/jobs``."""
    override = os.environ.get(JOBS_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "jobs"


def _new_job_id() -> str:
    return uuid.uuid4().hex[:16]


@dataclass
class JobRecord:
    """One job's full persisted state (the JSON file's in-memory twin)."""

    id: str
    scenario: dict[str, Any]
    solver: str = "auto"
    options: dict[str, Any] = field(default_factory=dict)
    shards: int | None = None
    state: str = "queued"
    created_at: float = 0.0
    updated_at: float = 0.0
    progress: dict[str, int] = field(default_factory=dict)
    events: list[dict[str, Any]] = field(default_factory=list)
    error: str = ""
    cache_key: str = ""
    stats: dict[str, Any] | None = None
    #: Total events ever appended; each event carries it as ``seq`` so
    #: streams stay gap-aware even after the event window is trimmed.
    event_seq: int = 0
    #: Distributed-trace linkage captured at submit time:
    #: ``{"trace_id": ..., "parent_id": ...}`` — the submitting
    #: request's trace and the span the job's tree parents under.
    trace: dict[str, Any] | None = None
    #: Client-minted dedup key: resubmitting with the same key returns
    #: this record instead of running the sweep twice.
    idempotency_key: str = ""
    #: End-to-end budget carried from the submitting request, if any.
    deadline_ms: int | None = None
    #: True when the job finished with some shards poisoned and the
    #: merged result covers only the shards that succeeded.
    partial: bool = False

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def scenario_name(self) -> str:
        return str(self.scenario.get("name", ""))

    def to_dict(self) -> dict[str, Any]:
        """The complete record (the persisted file layout)."""
        return {
            "id": self.id,
            "scenario": self.scenario,
            "solver": self.solver,
            "options": self.options,
            "shards": self.shards,
            "state": self.state,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
            "progress": dict(self.progress),
            "events": list(self.events),
            "error": self.error,
            "cache_key": self.cache_key,
            "stats": self.stats,
            "event_seq": self.event_seq,
            "trace": self.trace,
            "idempotency_key": self.idempotency_key,
            "deadline_ms": self.deadline_ms,
            "partial": self.partial,
        }

    def to_payload(self) -> dict[str, Any]:
        """The API view: everything but the scenario body and event log."""
        return {
            "id": self.id,
            "scenario_name": self.scenario_name,
            "solver": self.solver,
            "options": dict(self.options),
            "shards": self.shards,
            "state": self.state,
            "created_at": round(self.created_at, 3),
            "updated_at": round(self.updated_at, 3),
            "progress": dict(self.progress),
            "n_events": len(self.events),
            "error": self.error,
            "cache_key": self.cache_key,
            "stats": self.stats,
            "trace_id": (self.trace or {}).get("trace_id", ""),
            "partial": self.partial,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "JobRecord":
        if not isinstance(payload, Mapping):
            raise TypeError(f"job record must be a mapping, got {type(payload)}")
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in payload.items() if k in known})


class JobStore:
    """Thread-safe, disk-backed registry of :class:`JobRecord` entries.

    All mutation goes through the store (``create`` / ``update`` /
    ``transition`` / ``add_event``) under one lock; every mutation
    persists atomically before it is observable, so the in-memory view
    never runs ahead of the disk.  Unreadable files found on load are
    skipped, not fatal — one corrupt entry must not take down the
    service.
    """

    def __init__(self, directory: str | Path | None = None) -> None:
        self.directory = Path(directory) if directory else default_jobs_dir()
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._version = 0
        self._records: dict[str, JobRecord] = {}
        self._load()

    # -- persistence ---------------------------------------------------------
    def path_for(self, job_id: str) -> Path:
        return self.directory / f"{job_id}.json"

    def result_path_for(self, job_id: str) -> Path:
        return self.directory / f"{job_id}.result.json"

    @staticmethod
    def _backup_path_for(path: Path) -> Path:
        # ``<id>.json.bak`` — outside the ``*.json`` glob on purpose.
        return path.with_name(path.name + ".bak")

    def _read_record(self, path: Path) -> JobRecord | None:
        try:
            with path.open("r", encoding="utf-8") as handle:
                return JobRecord.from_dict(json.load(handle))
        except (OSError, json.JSONDecodeError, TypeError, KeyError):
            return None

    def _recover_from_backup(self, path: Path) -> JobRecord | None:
        """Torn record file: fall back to its last-good ``.bak`` twin.

        The torn file is moved aside (``.corrupt``) for post-mortem and
        the backup's state rewritten as current.  Losing the very last
        mutation is fine — a lost progress tick re-runs; a lost terminal
        write re-runs the job, which is idempotent through the result
        cache — whereas trusting half a JSON file is not.
        """
        record = self._read_record(self._backup_path_for(path))
        if record is None:
            return None
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:
            pass
        try:
            self._write(path, record.to_dict())
        except (OSError, faults.FaultError):
            pass
        return record

    def _load(self) -> None:
        if not self.directory.is_dir():
            return
        recovered = 0
        for path in sorted(self.directory.glob("*.json")):
            if path.name.endswith(".result.json"):
                continue
            record = self._read_record(path)
            if record is None:
                record = self._recover_from_backup(path)
                if record is None:
                    continue
                recovered += 1
            self._records[record.id] = record
        # A crash between the backup rotation and the final rename
        # leaves only ``<id>.json.bak``: restore those too.
        for backup in sorted(self.directory.glob("*.json.bak")):
            main = backup.with_name(backup.name[: -len(".bak")])
            if main.exists():
                continue
            record = self._read_record(backup)
            if record is None or record.id in self._records:
                continue
            try:
                self._write(main, record.to_dict())
            except (OSError, faults.FaultError):
                pass
            self._records[record.id] = record
            recovered += 1
        if recovered:
            obs.inc("jobs.store.recovered", recovered)

    def _write(self, path: Path, payload: Any, backup: bool = False) -> None:
        faults.check("store.write")
        self.directory.mkdir(parents=True, exist_ok=True)
        descriptor, temp_name = tempfile.mkstemp(
            dir=self.directory, suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            if backup and path.exists():
                # Keep the previous good state next to the new one, so
                # a record torn by a crash or disk fault recovers to its
                # last persisted state instead of vanishing.
                os.replace(path, self._backup_path_for(path))
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def _save_locked(self, record: JobRecord, advisory: bool = False) -> None:
        """Persist ``record``; ``advisory`` saves tolerate write failure.

        Progress ticks and event appends are advisory — the in-memory
        record stays authoritative and the next successful save persists
        the accumulated state — whereas creates and state transitions
        must reach disk or raise.
        """
        record.updated_at = time.time()
        try:
            self._write(
                self.path_for(record.id), record.to_dict(), backup=True
            )
        except (OSError, faults.FaultError):
            if not advisory:
                raise
            obs.inc("jobs.store.write_errors")
        self._version += 1
        self._cond.notify_all()

    # -- lifecycle -----------------------------------------------------------
    def create(
        self,
        scenario: Mapping[str, Any],
        solver: str = "auto",
        options: Mapping[str, Any] | None = None,
        shards: int | None = None,
        progress: Mapping[str, int] | None = None,
        trace: Mapping[str, Any] | None = None,
        idempotency_key: str = "",
        deadline_ms: int | None = None,
    ) -> JobRecord:
        """Mint, persist and return a new ``queued`` job."""
        record = JobRecord(
            id=_new_job_id(),
            scenario=dict(scenario),
            solver=solver,
            options=dict(options or {}),
            shards=shards,
            state="queued",
            created_at=time.time(),
            progress=dict(progress or {}),
            trace=dict(trace) if trace else None,
            idempotency_key=idempotency_key,
            deadline_ms=deadline_ms,
        )
        with self._lock:
            self._records[record.id] = record
            self._append_event_locked(
                record, {"event": "state", "state": "queued"}
            )
            self._save_locked(record)
        return record

    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            try:
                return self._records[job_id]
            except KeyError:
                raise JobNotFound(job_id) from None

    def list(self) -> list[JobRecord]:
        """Every known job, newest first."""
        with self._lock:
            return sorted(
                self._records.values(),
                key=lambda record: (record.created_at, record.id),
                reverse=True,
            )

    def find_by_idempotency_key(self, key: str) -> JobRecord | None:
        """The newest job submitted with ``key``, or None.

        Linear over the in-memory records — job counts are bounded by
        prune policy, and dedup lookups happen once per submit.
        """
        if not key:
            return None
        with self._lock:
            matches = [
                record
                for record in self._records.values()
                if record.idempotency_key == key
            ]
        if not matches:
            return None
        return max(matches, key=lambda record: (record.created_at, record.id))

    def transition(
        self,
        job_id: str,
        state: str,
        error: str = "",
        stats: Mapping[str, Any] | None = None,
        cache_key: str | None = None,
        partial: bool | None = None,
        **event_fields: Any,
    ) -> JobRecord:
        """Move a job to ``state`` (persisting an event), and return it.

        Terminal states are sticky: transitioning an already-terminal
        job is a no-op returning the record unchanged, so racing
        finish/cancel paths cannot overwrite each other's outcome.
        """
        if state not in STATES:
            raise ValueError(f"unknown job state {state!r}; known: {STATES}")
        with self._lock:
            record = self.get(job_id)
            if record.terminal:
                return record
            record.state = state
            if error:
                record.error = error
            if stats is not None:
                record.stats = dict(stats)
            if cache_key is not None:
                record.cache_key = cache_key
            if partial is not None:
                record.partial = bool(partial)
            self._append_event_locked(
                record, {"event": "state", "state": state, **event_fields}
            )
            self._save_locked(record)
            return record

    def add_event(self, job_id: str, event: str, **fields: Any) -> JobRecord:
        """Append a progress event (shard completions etc.) and persist."""
        with self._lock:
            record = self.get(job_id)
            self._append_event_locked(record, {"event": event, **fields})
            self._save_locked(record, advisory=True)
            return record

    def _append_event_locked(
        self, record: JobRecord, event: dict[str, Any]
    ) -> None:
        record.event_seq += 1
        record.events.append(
            {"ts": round(time.time(), 3), "seq": record.event_seq, **event}
        )
        if len(record.events) > MAX_EVENTS:
            del record.events[: len(record.events) - MAX_EVENTS]

    def update_progress(self, job_id: str, **counters: int) -> JobRecord:
        """Merge progress counters (``shards_done``, ``points_done``, …)."""
        with self._lock:
            record = self.get(job_id)
            record.progress.update(
                {name: int(value) for name, value in counters.items()}
            )
            self._save_locked(record, advisory=True)
            return record

    # -- results -------------------------------------------------------------
    def write_result(self, job_id: str, payload: Mapping[str, Any]) -> Path:
        """Persist a job's merged columnar result payload atomically."""
        path = self.result_path_for(job_id)
        self._write(path, dict(payload))
        return path

    def read_result(self, job_id: str) -> dict[str, Any] | None:
        """The stored result payload, or None when absent/unreadable."""
        try:
            with self.result_path_for(job_id).open(
                "r", encoding="utf-8"
            ) as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None

    # -- change notification --------------------------------------------------
    @property
    def version(self) -> int:
        with self._lock:
            return self._version

    def wait_for_change(self, version: int, timeout: float) -> int:
        """Block until the store version moves past ``version`` (or timeout).

        Returns the current version either way; callers re-read whatever
        records they follow.
        """
        deadline = time.monotonic() + timeout
        with self._cond:
            while self._version == version:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._cond.wait(remaining):
                    break
            return self._version

    def stats(self) -> dict[str, Any]:
        """Aggregate view for ``/v1/jobs`` listings and health payloads."""
        with self._lock:
            by_state: dict[str, int] = {}
            for record in self._records.values():
                by_state[record.state] = by_state.get(record.state, 0) + 1
        return {
            "directory": str(self.directory),
            "jobs": sum(by_state.values()),
            "by_state": by_state,
        }
