"""Job orchestration: queue, shard, evaluate, merge, persist.

:class:`JobManager` is the execution half of the job subsystem.  One
dispatcher thread drains the submit queue job by job; each job's
scenario is split by :func:`~.sharder.shard_scenario` and its shards
evaluated concurrently on a :class:`WorkerPool` through the columnar
engine (numpy releases the GIL, so threads scale the kernel across
cores), then scatter-merged back into one
:class:`~repro.explore.columnar.ResultTable` that is bit-identical to
the unsharded run.

Jobs share the service's single-flight :class:`~repro.service.coalesce.
Coalescer` under the same :func:`flight_key` the inline ``/v1/explore``
path computes, so an identical sweep submitted as a job while an inline
request is in flight (or vice versa) costs one engine run.  The merged
result is also written to the engine's result cache under the inline
key, so later inline explores of the same scenario are cache hits.

Every lifecycle edge is instrumented (``jobs.submitted`` /
``jobs.completed`` / ``jobs.failed`` / ``jobs.cancelled`` counters, a
``jobs.queue_depth`` gauge, a ``jobs.shard_seconds`` histogram and a
per-job span tree) and persisted through the crash-safe
:class:`~.store.JobStore`.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor, as_completed
from concurrent.futures import wait as futures_wait
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping

from .. import obs
from ..resilience import Deadline, DeadlineExceeded, faults
from ..explore.cache import CACHE_SCHEMA_VERSION, ResultCache, content_hash
from ..explore.columnar import ResultTable
from ..explore.engine import (
    EvaluationStats,
    ExplorationResult,
    cache_key_payload,
    explore,
)
from ..explore.scenario import Scenario
from ..service.coalesce import Coalescer
from ..service.memcache import TieredCache, as_cache
from ..solvers import EngineSolver, get_solver
from ..study import ResultSet, Study
from .sharder import Shard, merge_stats, merge_tables, shard_scenario
from .store import JobRecord, JobStore

__all__ = [
    "JobCancelled",
    "JobError",
    "JobStateError",
    "JobTimeout",
    "JobManager",
    "WorkerPool",
    "flight_key",
]

#: How long the dispatcher sleeps between queue checks while idle.
_DISPATCH_IDLE_SECONDS = 0.5


class JobError(Exception):
    """Base class for job-subsystem failures."""


class JobCancelled(JobError):
    """Raised inside a job's producer when its cancel flag is set."""

    def __init__(self, job_id: str) -> None:
        super().__init__(f"job {job_id} was cancelled")
        self.job_id = job_id


class JobStateError(JobError):
    """The job exists but is in the wrong state for the operation."""


class JobTimeout(JobError):
    """``wait()`` gave up before the job reached a terminal state."""


def flight_key(
    scenario: Scenario, solver: str, options: Mapping[str, Any]
) -> str:
    """The single-flight key a (scenario, solve policy) request shares.

    Exactly the key :meth:`repro.service.server.ServiceState.run_scenario`
    computes for inline requests — identical sweeps submitted as a job
    and posted to ``/v1/explore`` concurrently therefore join one
    coalescer flight and cost one engine run.
    """
    return content_hash(
        {
            **cache_key_payload(scenario),
            "solver": solver,
            "options": dict(options),
        }
    )


def _default_pool_size() -> int:
    # Enough threads to cover the default shard fan-out even on small
    # machines (the kernel releases the GIL, so oversubscription on one
    # core costs little and tests still exercise real concurrency).
    return max(2, min(8, os.cpu_count() or 1))


class WorkerPool:
    """Lazily started thread pool evaluating shards for the manager."""

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max_workers or _default_pool_size()
        self._lock = threading.Lock()
        self._executor: ThreadPoolExecutor | None = None

    def submit(self, fn: Callable[..., Any], *args: Any, **kwargs: Any):
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-job-shard",
                )
            return self._executor.submit(fn, *args, **kwargs)

    def shutdown(self) -> None:
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)


#: Signature of the pluggable shard evaluator: (shard scenario, engine
#: method) in, ExplorationResult out.  Tests inject gates/counters here
#: without monkey-patching the engine.
EvaluateShard = Callable[[Scenario, str], ExplorationResult]


class JobManager:
    """Submit/poll/cancel/stream lifecycle over a persistent store.

    Jobs are dispatched strictly one at a time (a job's parallelism is
    its shards, not its siblings — the bounded worker pool is the
    concurrency budget), which keeps per-job latency predictable under
    a queue and makes the queue-depth gauge meaningful.
    """

    def __init__(
        self,
        store: JobStore | str | Path | None = None,
        cache: TieredCache | ResultCache | str | Path | None = None,
        use_cache: bool = True,
        coalescer: Coalescer | None = None,
        pool: WorkerPool | None = None,
        evaluate_shard: EvaluateShard | None = None,
        recover: bool = True,
        trace_store: "obs.TraceStore | None" = None,
        max_shard_retries: int = 1,
        shard_timeout: float | None = None,
        allow_partial: bool = True,
    ) -> None:
        if max_shard_retries < 0:
            raise ValueError(
                f"max_shard_retries must be >= 0, got {max_shard_retries}"
            )
        if shard_timeout is not None and shard_timeout <= 0:
            raise ValueError(
                f"shard_timeout must be positive or None, got {shard_timeout}"
            )
        self.store = store if isinstance(store, JobStore) else JobStore(store)
        self.cache = as_cache(cache)
        self.use_cache = use_cache
        self.coalescer = coalescer or Coalescer()
        self.pool = pool or WorkerPool()
        #: Extra attempts a failing shard gets before it is poisoned.
        self.max_shard_retries = max_shard_retries
        #: Watchdog: with no shard finishing for this long, in-flight
        #: shards are presumed hung, abandoned and re-queued.
        self.shard_timeout = shard_timeout
        #: When True, a job with poisoned shards still delivers the
        #: merged surviving shards tagged ``partial=true``.
        self.allow_partial = allow_partial
        # When set (the service passes its TraceStore), a job executed
        # on the dispatcher thread records its span tree here under the
        # submitting request's trace id — the cross-thread stitch.
        self.trace_store = trace_store
        self._evaluate_shard = evaluate_shard or self._explore_shard
        self._submit_lock = threading.Lock()
        self._lock = threading.Lock()
        self._queue: deque[str] = deque()
        self._queue_cond = threading.Condition(self._lock)
        self._cancel_events: dict[str, threading.Event] = {}
        self._stopping = False
        self._dispatcher: threading.Thread | None = None
        if recover:
            self.recover()

    # -- submission ----------------------------------------------------------
    def submit(
        self,
        scenario: Scenario | Mapping[str, Any],
        solver: str = "auto",
        options: Mapping[str, Any] | None = None,
        shards: int | None = None,
        idempotency_key: str = "",
        deadline_ms: int | None = None,
    ) -> JobRecord:
        """Persist a new queued job and wake the dispatcher.

        Raises :class:`~repro.solvers.SolverError` on an unknown solver
        name and ``ValueError`` on a bad shard count — both before
        anything is persisted, so a rejected submit leaves no record.

        With an ``idempotency_key``, resubmitting the same key returns
        the already-known job instead of creating (and running) a
        duplicate — the contract that makes client submit-retries safe.
        ``deadline_ms`` bounds the job's execution; past it, remaining
        shards are abandoned and the job fails (or completes partial).
        """
        if not isinstance(scenario, Scenario):
            scenario = Scenario.from_dict(dict(scenario))
        if shards is not None and shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if deadline_ms is not None and deadline_ms < 1:
            raise ValueError(
                f"deadline_ms must be >= 1, got {deadline_ms}"
            )
        options = dict(options or {})
        solver_obj = get_solver(solver)
        solver = solver_obj.name
        planned = (
            len(shard_scenario(scenario, shards))
            if isinstance(solver_obj, EngineSolver) and not options
            else 1
        )
        # Capture the submitting thread's trace context (the server's
        # request handler activates one per traced request), so the
        # job's spans — run later, on other threads — stitch under the
        # submitting request's span in one tree.
        context = obs.current_context()
        trace = (
            {"trace_id": context.trace_id, "parent_id": context.span_id}
            if context is not None and self.trace_store is not None
            else None
        )
        # Dedup-check and create under one lock, so two racing retries
        # of the same submit cannot both mint a job.  Deliberately NOT
        # self._lock: that one doubles as the queue condition and
        # _enqueue must be able to take it after this block.
        with self._submit_lock:
            if idempotency_key:
                existing = self.store.find_by_idempotency_key(
                    idempotency_key
                )
                if existing is not None:
                    obs.inc("jobs.deduplicated")
                    return existing
            record = self.store.create(
                scenario.to_dict(),
                solver=solver,
                options=options,
                shards=shards,
                trace=trace,
                idempotency_key=idempotency_key,
                deadline_ms=deadline_ms,
                progress={
                    "shards_total": planned,
                    "shards_done": 0,
                    "points_total": scenario.size,
                    "points_done": 0,
                },
            )
        obs.inc("jobs.submitted", solver=solver)
        self._enqueue(record.id)
        return record

    def _enqueue(self, job_id: str) -> None:
        with self._queue_cond:
            self._cancel_events.setdefault(job_id, threading.Event())
            self._queue.append(job_id)
            self._set_queue_gauge_locked()
            self._ensure_dispatcher_locked()
            self._queue_cond.notify_all()

    def recover(self) -> list[str]:
        """Re-queue every non-terminal job found on disk (oldest first).

        Safe to replay: finished shards are cache hits, so a job killed
        mid-run re-runs only the shards it had not completed.  Terminal
        jobs are left exactly as persisted.
        """
        requeued: list[str] = []
        for record in reversed(self.store.list()):
            if record.terminal:
                continue
            if record.state == "running":
                self.store.transition(record.id, "queued", requeued=True)
            self._enqueue(record.id)
            requeued.append(record.id)
        return requeued

    # -- dispatcher ----------------------------------------------------------
    def _ensure_dispatcher_locked(self) -> None:
        if self._dispatcher is None or not self._dispatcher.is_alive():
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop,
                name="repro-job-dispatcher",
                daemon=True,
            )
            self._dispatcher.start()

    def _dispatch_loop(self) -> None:
        while True:
            with self._queue_cond:
                while not self._queue and not self._stopping:
                    self._queue_cond.wait(_DISPATCH_IDLE_SECONDS)
                if self._stopping:
                    return
                job_id = self._queue.popleft()
                self._set_queue_gauge_locked()
            try:
                self._execute(job_id)
            except Exception:  # pragma: no cover — the dispatcher survives
                # _execute already recorded the failure on the job; a bug
                # escaping it must not kill the only dispatcher thread.
                pass

    def _set_queue_gauge_locked(self) -> None:
        obs.set_gauge("jobs.queue_depth", len(self._queue))

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return len(self._queue)

    def _trace_scope(
        self, record: JobRecord
    ) -> tuple["obs.SpanTracer | None", "obs.TraceContext | None"]:
        """A fresh tracer + adopted context for a traced job, else Nones."""
        trace = record.trace or {}
        trace_id = str(trace.get("trace_id", ""))
        if not trace_id or self.trace_store is None:
            return None, None
        return obs.SpanTracer(), obs.TraceContext(
            trace_id, str(trace.get("parent_id", ""))
        )

    def _flush_trace(
        self, record: JobRecord, tracer: "obs.SpanTracer | None"
    ) -> None:
        """Record the job's finished span trees under its trace id."""
        if tracer is None or self.trace_store is None:
            return
        roots = tracer.to_dict()["roots"]
        if roots:
            self.trace_store.add_spans(
                str((record.trace or {}).get("trace_id", "")),
                roots,
                job_id=record.id,
            )

    def _execute(self, job_id: str) -> None:
        record = self.store.get(job_id)
        if record.terminal:
            return
        cancel = self._cancel_events.setdefault(job_id, threading.Event())
        if cancel.is_set():
            self.store.transition(job_id, "cancelled")
            obs.inc("jobs.cancelled")
            return
        self.store.transition(job_id, "running")
        scenario = Scenario.from_dict(record.scenario)
        key = flight_key(scenario, record.solver, record.options)
        started = time.perf_counter()
        tracer, context = self._trace_scope(record)
        try:
            with obs.adopt(tracer, context):
                with obs.span("jobs.run", job=job_id, solver=record.solver):
                    result, coalesced = self.coalescer.run(
                        key, lambda: self._produce(record, scenario, cancel)
                    )
        except JobCancelled:
            self.store.transition(job_id, "cancelled")
            obs.inc("jobs.cancelled")
        except DeadlineExceeded as error:
            obs.inc("jobs.deadline_breaches")
            self.store.transition(
                job_id, "failed", error=f"DeadlineExceeded: {error}"
            )
            obs.inc("jobs.failed")
        except Exception as error:  # noqa: BLE001 — the job failure boundary
            self.store.transition(
                job_id, "failed", error=f"{type(error).__name__}: {error}"
            )
            obs.inc("jobs.failed")
        else:
            partial = bool(getattr(result, "partial", False))
            self.store.write_result(
                job_id, self._result_payload(result, coalesced)
            )
            if not partial:
                # A full result completes the progress counters; a
                # partial one keeps the honest shards_done/points_done
                # the shard loop recorded.
                progress = self.store.get(job_id).progress
                self.store.update_progress(
                    job_id,
                    shards_done=progress.get("shards_total", 1),
                    points_done=progress.get("points_total", len(result)),
                )
            self.store.transition(
                job_id,
                "done",
                stats=result.stats.to_dict() if result.stats else None,
                cache_key=result.cache_key,
                coalesced=coalesced,
                partial=partial or None,
                seconds=round(time.perf_counter() - started, 4),
            )
            obs.inc("jobs.completed", solver=record.solver)
        finally:
            self._flush_trace(record, tracer)

    # -- producers (run under the coalescer flight) ---------------------------
    def _explore_shard(
        self, scenario: Scenario, method: str
    ) -> ExplorationResult:
        return explore(
            scenario,
            method=method,
            cache=self.cache,
            use_cache=self.use_cache,
        )

    def _produce(
        self,
        record: JobRecord,
        scenario: Scenario,
        cancel: threading.Event,
    ) -> ResultSet:
        solver_obj = get_solver(record.solver)
        if isinstance(solver_obj, EngineSolver) and not record.options:
            return self._produce_sharded(record, scenario, solver_obj, cancel)
        return self._produce_registry(record, scenario)

    def _run_shard(
        self,
        record_id: str,
        shard: Shard,
        method: str,
        cancel: threading.Event,
        trace: "tuple[obs.SpanTracer | None, obs.TraceContext | None]" = (
            None,
            None,
        ),
    ) -> tuple[ExplorationResult, float]:
        if cancel.is_set():
            raise JobCancelled(record_id)
        faults.check("shard.run")
        # Adopt the dispatcher's tracer + context on this pool thread:
        # the shard span (and the engine phase spans beneath it) parent
        # under the job's ``jobs.run`` span instead of orphaning here.
        with obs.adopt(*trace):
            started = time.perf_counter()
            with obs.span("jobs.shard", shard=shard.index + 1, of=shard.count):
                exploration = self._evaluate_shard(shard.scenario, method)
            return exploration, time.perf_counter() - started

    def _produce_sharded(
        self,
        record: JobRecord,
        scenario: Scenario,
        solver: EngineSolver,
        cancel: threading.Event,
    ) -> ResultSet:
        method = solver.engine_method
        shards = shard_scenario(scenario, record.shards)
        self.store.update_progress(
            record.id,
            shards_total=len(shards),
            shards_done=0,
            points_total=scenario.size,
            points_done=0,
        )
        started = time.perf_counter()
        # The trace scope shard workers adopt: this (dispatcher) thread's
        # tracer, positioned at the currently open span (``jobs.run``).
        tracer = obs.current_tracer()
        shard_context = None
        if tracer is not None:
            open_span = tracer.current_span()
            if open_span is not None and open_span.span_id:
                base = obs.current_context() or obs.TraceContext("", "")
                shard_context = base.child(open_span.span_id)
        deadline = (
            Deadline.after(record.deadline_ms / 1000.0)
            if record.deadline_ms
            else None
        )

        def submit_one(shard: Shard):
            return self.pool.submit(
                self._run_shard,
                record.id,
                shard,
                method,
                cancel,
                trace=(tracer, shard_context),
            )

        attempts = {shard.index: 1 for shard in shards}
        pending = {submit_one(shard): shard for shard in shards}
        done: dict[int, tuple[Shard, ExplorationResult]] = {}
        failures: dict[int, str] = {}
        points_done = 0
        last_progress = time.monotonic()

        def retry_or_poison(shard: Shard, why: str, event: str) -> None:
            """Give the shard another attempt within budget, else poison it."""
            if attempts[shard.index] <= self.max_shard_retries:
                attempts[shard.index] += 1
                obs.inc("jobs.shard_retries")
                self.store.add_event(
                    record.id,
                    event,
                    shard=shard.index + 1,
                    of=shard.count,
                    attempt=attempts[shard.index],
                    error=why,
                )
                pending[submit_one(shard)] = shard
            else:
                failures[shard.index] = why
                obs.inc("jobs.shard_poisoned")
                self.store.add_event(
                    record.id,
                    "shard_poisoned",
                    shard=shard.index + 1,
                    of=shard.count,
                    attempts=attempts[shard.index],
                    error=why,
                )

        try:
            while pending:
                timeouts = []
                if self.shard_timeout is not None:
                    timeouts.append(
                        max(
                            0.0,
                            self.shard_timeout
                            - (time.monotonic() - last_progress),
                        )
                    )
                if deadline is not None:
                    timeouts.append(max(0.0, deadline.remaining()))
                finished, _ = futures_wait(
                    set(pending), timeout=min(timeouts) if timeouts else None
                )
                if cancel.is_set():
                    raise JobCancelled(record.id)
                if not finished and deadline is not None and deadline.expired:
                    # Budget spent: whatever is still in flight is
                    # abandoned, and the shards it covered count as
                    # failed for the partial-result decision below.
                    obs.inc("jobs.deadline_breaches")
                    self.store.add_event(
                        record.id,
                        "deadline",
                        budget_ms=record.deadline_ms,
                        shards_done=len(done),
                        shards_abandoned=len(pending),
                    )
                    for future, shard in pending.items():
                        future.cancel()
                        failures[shard.index] = (
                            f"deadline of {record.deadline_ms} ms exceeded"
                        )
                    pending.clear()
                    break
                if not finished:
                    # Watchdog: nothing finished within shard_timeout.
                    # The pool cannot kill a hung thread, so the futures
                    # are abandoned (their eventual results discarded)
                    # and the shards re-queued as fresh attempts.
                    hung = list(pending.items())
                    pending.clear()
                    obs.inc("jobs.shard_watchdog_timeouts", len(hung))
                    for future, shard in hung:
                        future.cancel()
                        retry_or_poison(
                            shard,
                            f"no progress for {self.shard_timeout:g}s "
                            f"(presumed hung)",
                            "shard_requeued",
                        )
                    last_progress = time.monotonic()
                    continue
                for future in finished:
                    shard = pending.pop(future)
                    try:
                        exploration, seconds = future.result()
                    except JobCancelled:
                        raise
                    except Exception as error:  # noqa: BLE001 — shard boundary
                        retry_or_poison(
                            shard,
                            f"{type(error).__name__}: {error}",
                            "shard_retry",
                        )
                        continue
                    done[shard.index] = (shard, exploration)
                    points_done += shard.n
                    last_progress = time.monotonic()
                    obs.observe("jobs.shard_seconds", seconds)
                    self.store.update_progress(
                        record.id,
                        shards_done=len(done),
                        points_done=points_done,
                    )
                    self.store.add_event(
                        record.id,
                        "shard",
                        shard=shard.index + 1,
                        of=shard.count,
                        rows=shard.n,
                        seconds=round(seconds, 4),
                        cache_hit=exploration.cache_hit,
                        attempt=attempts[shard.index],
                    )
                if cancel.is_set():
                    raise JobCancelled(record.id)
        except BaseException:
            # Abort everything not yet started; shards already running
            # finish on their pool thread and are simply discarded.
            for future in pending:
                future.cancel()
            raise

        if failures and not done:
            first = failures[min(failures)]
            raise JobError(
                f"all {len(shards)} shards failed; first error: {first}"
            )
        partial = bool(failures)
        if partial and not self.allow_partial:
            raise JobError(
                f"{len(failures)} of {len(shards)} shards failed: "
                + "; ".join(
                    f"shard {index + 1}: {why}"
                    for index, why in sorted(failures.items())
                )
            )

        pairs = [done[index] for index in sorted(done)]
        with obs.span("jobs.merge", job=record.id, shards=len(pairs)):
            if partial:
                # Surviving shards only: plain concatenation in shard
                # order (the scatter path requires full row coverage).
                table = merge_tables(
                    [exploration.table for _, exploration in pairs]
                )
            else:
                table = merge_tables(
                    [
                        (shard, exploration.table)
                        for shard, exploration in pairs
                    ]
                )
            stats = merge_stats(
                [exploration.stats for _, exploration in pairs],
                elapsed_seconds=time.perf_counter() - started,
            )
        engine_key = content_hash(
            {**cache_key_payload(scenario), "method": method}
        )
        parity = all(exploration.parity_checked for _, exploration in pairs)
        if partial:
            obs.inc("jobs.partial_results")
            self.store.add_event(
                record.id,
                "partial",
                shards_failed=sorted(
                    index + 1 for index in failures
                ),
                shards_merged=len(pairs),
            )
        if self.use_cache and not partial:
            # Under the inline explore() key, so a later inline request
            # for the full scenario is a cache hit, not a re-run.  A
            # partial table must never be cached under the full key.
            try:
                self.cache.put(
                    engine_key,
                    {
                        "schema": CACHE_SCHEMA_VERSION,
                        "method": method,
                        "scenario": scenario.to_dict(),
                        "stats": stats.to_dict(),
                        "parity_checked": parity,
                        "columns": table.to_payload_columns(),
                    },
                )
            except (OSError, faults.FaultError):
                obs.inc("cache.disk.write_errors")
        return ResultSet(
            records=table.rows(),
            solver=solver.name,
            scenario=scenario,
            stats=stats,
            cache_hit=False,
            cache_key=engine_key,
            partial=partial,
        )

    def _produce_registry(
        self, record: JobRecord, scenario: Scenario
    ) -> ResultSet:
        # Scalar/custom solvers and option-carrying runs evaluate as one
        # unit through the Study registry contract (same path as inline).
        self.store.update_progress(
            record.id, shards_total=1, points_total=scenario.size
        )
        return (
            Study.from_scenario(scenario)
            .solver(record.solver, **record.options)
            .cached(self.cache, enabled=self.use_cache)
            .run()
        )

    def _result_payload(
        self, result: ResultSet, coalesced: bool
    ) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "solver": result.solver,
            "n_records": len(result),
            "coalesced": coalesced,
            "cache": {"hit": result.cache_hit, "key": result.cache_key},
        }
        if getattr(result, "partial", False):
            payload["partial"] = True
        if result.scenario is not None:
            payload["scenario"] = result.scenario.to_dict()
        if result.stats is not None:
            payload["stats"] = result.stats.to_dict()
        table = result._table
        if table is not None:
            payload["columns"] = table.to_payload_columns()
        else:  # pragma: no cover — every local producer is table-backed
            payload["records"] = result.to_dicts()
        return payload

    # -- queries -------------------------------------------------------------
    def job(self, job_id: str) -> dict[str, Any]:
        """The status payload for one job (raises :class:`JobNotFound`)."""
        return self.store.get(job_id).to_payload()

    def jobs(self) -> list[dict[str, Any]]:
        """Status payloads for every known job, newest first."""
        return [record.to_payload() for record in self.store.list()]

    def wait(
        self,
        job_id: str,
        timeout: float | None = None,
        poll: float = 1.0,
    ) -> dict[str, Any]:
        """Block until the job is terminal; returns its status payload.

        Raises :class:`JobTimeout` when ``timeout`` elapses first.  The
        wait rides the store's change condition, so it wakes on real
        transitions rather than busy-polling (``poll`` only bounds each
        individual sleep).
        """
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        version = self.store.version
        while True:
            record = self.store.get(job_id)
            if record.terminal:
                return record.to_payload()
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise JobTimeout(
                        f"job {job_id} still {record.state!r} after "
                        f"{timeout:g} s"
                    )
                version = self.store.wait_for_change(
                    version, min(poll, remaining)
                )
            else:
                version = self.store.wait_for_change(version, poll)

    def cancel(self, job_id: str) -> dict[str, Any]:
        """Request cancellation; returns the job's (new) status payload.

        A queued job is cancelled immediately; a running job stops at
        the next shard boundary (pending shards are aborted).  A
        terminal job raises :class:`JobStateError` — there is nothing
        left to cancel.
        """
        with self._lock:
            record = self.store.get(job_id)
            if record.terminal:
                raise JobStateError(
                    f"job {job_id} is already {record.state!r}"
                )
            event = self._cancel_events.setdefault(job_id, threading.Event())
            event.set()
            if record.state == "queued":
                record = self.store.transition(job_id, "cancelled")
                obs.inc("jobs.cancelled")
                # Drop it from the queue now: leaving the id for the
                # dispatcher to skip later would hold jobs.queue_depth
                # above zero for work that no longer exists.
                try:
                    self._queue.remove(job_id)
                except ValueError:
                    pass
                self._set_queue_gauge_locked()
        return self.store.get(job_id).to_payload()

    def job_result(self, job_id: str) -> ResultSet:
        """The merged result of a ``done`` job as a typed ResultSet."""
        payload = self._result_for(job_id)
        table = ResultTable.from_cache_payload(payload)
        stats = payload.get("stats")
        cache = payload.get("cache", {})
        return ResultSet(
            records=table.rows(),
            solver=str(payload.get("solver", "")),
            scenario=Scenario.from_dict(payload["scenario"])
            if "scenario" in payload
            else None,
            stats=EvaluationStats.from_dict(stats) if stats else None,
            cache_hit=bool(cache.get("hit", False)),
            cache_key=str(cache.get("key", "")),
            partial=bool(payload.get("partial", False)),
        )

    def job_result_response(self, job_id: str) -> tuple[ResultSet, bool]:
        """(ResultSet, coalesced) — what the result route serialises."""
        payload = self._result_for(job_id)
        return self.job_result(job_id), bool(payload.get("coalesced", False))

    def _result_for(self, job_id: str) -> dict[str, Any]:
        record = self.store.get(job_id)
        if record.state != "done":
            raise JobStateError(
                f"job {job_id} is {record.state!r}; results exist only "
                f"for 'done' jobs"
            )
        payload = self.store.read_result(job_id)
        if payload is None:
            raise JobStateError(
                f"job {job_id} is done but its result file is missing"
            )
        return payload

    def stream_events(
        self,
        job_id: str,
        poll: float = 0.5,
        timeout: float | None = None,
    ) -> Iterator[dict[str, Any]]:
        """Yield each job event once, following until a terminal state.

        Events carry a monotonically increasing ``seq``, so the stream
        is gap-free even when the store trims its event window.  With a
        ``timeout`` the generator stops (without error) once the job has
        produced nothing new for that long.
        """
        last_seq = -1
        version = self.store.version
        idle_deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        while True:
            record = self.store.get(job_id)
            fresh = [
                event
                for event in record.events
                if event.get("seq", 0) > last_seq
            ]
            for event in fresh:
                last_seq = max(last_seq, int(event.get("seq", 0)))
                yield event
            if record.terminal:
                return
            if fresh and idle_deadline is not None:
                idle_deadline = time.monotonic() + timeout
            if idle_deadline is not None and time.monotonic() >= idle_deadline:
                return
            version = self.store.wait_for_change(version, poll)

    # -- shutdown ------------------------------------------------------------
    def close(self) -> None:
        """Stop the dispatcher and worker pool (queued jobs stay queued)."""
        with self._queue_cond:
            self._stopping = True
            self._queue_cond.notify_all()
        dispatcher = self._dispatcher
        if dispatcher is not None:
            dispatcher.join(timeout=5.0)
        self.pool.shutdown()
