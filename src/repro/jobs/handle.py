"""``AsyncResult`` — one handle over a job, local or remote.

Both backends — an in-process :class:`~.manager.JobManager` and a
:class:`~repro.service.client.ServiceClient` pointed at a remote
``repro serve`` — expose the same four calls (``job`` / ``wait`` /
``cancel`` / ``job_result``), so the handle returned by
``Study.submit()`` and ``ServiceClient.submit()`` is the same class
and user code does not care where the shards actually ran.
"""

from __future__ import annotations

from typing import Any, Protocol

from ..study import ResultSet

__all__ = ["AsyncResult", "JobBackend"]


class JobBackend(Protocol):
    """What a job handle needs from whoever runs the job."""

    def job(self, job_id: str) -> dict[str, Any]: ...

    def wait(
        self, job_id: str, timeout: float | None = None, poll: float = 1.0
    ) -> dict[str, Any]: ...

    def cancel(self, job_id: str) -> dict[str, Any]: ...

    def job_result(self, job_id: str) -> ResultSet: ...


class AsyncResult:
    """A submitted job: poll its status, await its ResultSet, cancel it."""

    def __init__(self, backend: JobBackend, job_id: str) -> None:
        self._backend = backend
        self.id = job_id

    def __repr__(self) -> str:
        return f"AsyncResult(id={self.id!r}, state={self.state!r})"

    # -- status --------------------------------------------------------------
    def status(self) -> dict[str, Any]:
        """The job's current status payload (state, progress, stats…)."""
        return self._backend.job(self.id)

    @property
    def state(self) -> str:
        return str(self.status().get("state", ""))

    @property
    def done(self) -> bool:
        """True once the job is terminal (done, failed or cancelled)."""
        return self.status().get("state") in ("done", "failed", "cancelled")

    @property
    def progress(self) -> dict[str, int]:
        return dict(self.status().get("progress", {}))

    # -- outcome -------------------------------------------------------------
    def wait(
        self, timeout: float | None = None, poll: float = 1.0
    ) -> dict[str, Any]:
        """Block until terminal; returns the final status payload."""
        return self._backend.wait(self.id, timeout=timeout, poll=poll)

    def result(
        self, timeout: float | None = None, poll: float = 1.0
    ) -> ResultSet:
        """Wait for completion and return the merged ResultSet.

        Raises :class:`~.manager.JobError` (or the transport's
        ``ServiceError``) when the job failed or was cancelled instead
        of completing.
        """
        final = self.wait(timeout=timeout, poll=poll)
        state = final.get("state")
        if state != "done":
            from .manager import JobStateError

            raise JobStateError(
                f"job {self.id} finished as {state!r}"
                + (f": {final['error']}" if final.get("error") else "")
            )
        return self._backend.job_result(self.id)

    def cancel(self) -> dict[str, Any]:
        """Request cancellation; returns the job's new status payload."""
        return self._backend.cancel(self.id)
