"""Persistent async jobs: sharded, cached, resumable sweep execution.

The subsystem behind ``POST /v1/jobs`` and ``Study.submit()``:

- :mod:`~repro.jobs.store` — crash-safe JSON-per-job state with the
  ``queued → running → done/failed/cancelled`` lifecycle, progress
  counters and a change-notification condition for streams.
- :mod:`~repro.jobs.sharder` — deterministic content-hash scenario
  slicing plus the scatter-merge that reassembles columnar shard
  tables bit-identically to an unsharded run.
- :mod:`~repro.jobs.manager` — the dispatcher + worker pool that
  evaluates shards through the columnar engine, single-flighted with
  inline requests and instrumented end to end.
- :mod:`~repro.jobs.handle` — the ``AsyncResult`` handle shared by the
  local manager and the remote service client.
"""

from .handle import AsyncResult
from .manager import (
    JobCancelled,
    JobError,
    JobManager,
    JobStateError,
    JobTimeout,
    WorkerPool,
    flight_key,
)
from .sharder import Shard, merge_stats, merge_tables, shard_scenario
from .store import (
    JOBS_DIR_ENV,
    JobNotFound,
    JobRecord,
    JobStore,
    STATES,
    TERMINAL_STATES,
    default_jobs_dir,
)

__all__ = [
    "AsyncResult",
    "JOBS_DIR_ENV",
    "JobCancelled",
    "JobError",
    "JobManager",
    "JobNotFound",
    "JobRecord",
    "JobStateError",
    "JobStore",
    "JobTimeout",
    "STATES",
    "Shard",
    "TERMINAL_STATES",
    "WorkerPool",
    "default_jobs_dir",
    "flight_key",
    "merge_stats",
    "merge_tables",
    "shard_scenario",
]
